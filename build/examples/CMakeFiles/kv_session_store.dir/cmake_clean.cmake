file(REMOVE_RECURSE
  "CMakeFiles/kv_session_store.dir/kv_session_store.cpp.o"
  "CMakeFiles/kv_session_store.dir/kv_session_store.cpp.o.d"
  "kv_session_store"
  "kv_session_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_session_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
