# Empty dependencies file for parallel_fft.
# This may be replaced when dependencies are built.
