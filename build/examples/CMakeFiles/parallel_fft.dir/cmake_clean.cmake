file(REMOVE_RECURSE
  "CMakeFiles/parallel_fft.dir/parallel_fft.cpp.o"
  "CMakeFiles/parallel_fft.dir/parallel_fft.cpp.o.d"
  "parallel_fft"
  "parallel_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
