# Empty compiler generated dependencies file for big_array.
# This may be replaced when dependencies are built.
