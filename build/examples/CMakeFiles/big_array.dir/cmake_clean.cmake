file(REMOVE_RECURSE
  "CMakeFiles/big_array.dir/big_array.cpp.o"
  "CMakeFiles/big_array.dir/big_array.cpp.o.d"
  "big_array"
  "big_array.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/big_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
