# Empty compiler generated dependencies file for page_store.
# This may be replaced when dependencies are built.
