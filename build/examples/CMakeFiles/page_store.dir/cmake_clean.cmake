file(REMOVE_RECURSE
  "CMakeFiles/page_store.dir/page_store.cpp.o"
  "CMakeFiles/page_store.dir/page_store.cpp.o.d"
  "page_store"
  "page_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/page_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
