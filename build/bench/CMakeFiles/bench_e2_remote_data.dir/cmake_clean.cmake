file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_remote_data.dir/bench_e2_remote_data.cpp.o"
  "CMakeFiles/bench_e2_remote_data.dir/bench_e2_remote_data.cpp.o.d"
  "bench_e2_remote_data"
  "bench_e2_remote_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_remote_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
