# Empty compiler generated dependencies file for bench_e2_remote_data.
# This may be replaced when dependencies are built.
