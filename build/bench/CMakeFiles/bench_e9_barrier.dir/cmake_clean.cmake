file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_barrier.dir/bench_e9_barrier.cpp.o"
  "CMakeFiles/bench_e9_barrier.dir/bench_e9_barrier.cpp.o.d"
  "bench_e9_barrier"
  "bench_e9_barrier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_barrier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
