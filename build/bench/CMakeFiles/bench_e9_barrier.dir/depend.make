# Empty dependencies file for bench_e9_barrier.
# This may be replaced when dependencies are built.
