file(REMOVE_RECURSE
  "CMakeFiles/bench_e14_page_cache.dir/bench_e14_page_cache.cpp.o"
  "CMakeFiles/bench_e14_page_cache.dir/bench_e14_page_cache.cpp.o.d"
  "bench_e14_page_cache"
  "bench_e14_page_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e14_page_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
