file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_parallel_fft.dir/bench_e5_parallel_fft.cpp.o"
  "CMakeFiles/bench_e5_parallel_fft.dir/bench_e5_parallel_fft.cpp.o.d"
  "bench_e5_parallel_fft"
  "bench_e5_parallel_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_parallel_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
