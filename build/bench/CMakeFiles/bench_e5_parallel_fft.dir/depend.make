# Empty dependencies file for bench_e5_parallel_fft.
# This may be replaced when dependencies are built.
