file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_remote_call.dir/bench_e1_remote_call.cpp.o"
  "CMakeFiles/bench_e1_remote_call.dir/bench_e1_remote_call.cpp.o.d"
  "bench_e1_remote_call"
  "bench_e1_remote_call.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_remote_call.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
