# Empty compiler generated dependencies file for bench_e1_remote_call.
# This may be replaced when dependencies are built.
