file(REMOVE_RECURSE
  "CMakeFiles/bench_e12_out_of_core_fft.dir/bench_e12_out_of_core_fft.cpp.o"
  "CMakeFiles/bench_e12_out_of_core_fft.dir/bench_e12_out_of_core_fft.cpp.o.d"
  "bench_e12_out_of_core_fft"
  "bench_e12_out_of_core_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_out_of_core_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
