# Empty compiler generated dependencies file for bench_e12_out_of_core_fft.
# This may be replaced when dependencies are built.
