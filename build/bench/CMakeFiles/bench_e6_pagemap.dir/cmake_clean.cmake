file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_pagemap.dir/bench_e6_pagemap.cpp.o"
  "CMakeFiles/bench_e6_pagemap.dir/bench_e6_pagemap.cpp.o.d"
  "bench_e6_pagemap"
  "bench_e6_pagemap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_pagemap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
