# Empty compiler generated dependencies file for bench_e6_pagemap.
# This may be replaced when dependencies are built.
