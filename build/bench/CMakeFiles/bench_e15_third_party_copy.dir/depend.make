# Empty dependencies file for bench_e15_third_party_copy.
# This may be replaced when dependencies are built.
