file(REMOVE_RECURSE
  "CMakeFiles/bench_e15_third_party_copy.dir/bench_e15_third_party_copy.cpp.o"
  "CMakeFiles/bench_e15_third_party_copy.dir/bench_e15_third_party_copy.cpp.o.d"
  "bench_e15_third_party_copy"
  "bench_e15_third_party_copy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e15_third_party_copy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
