file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_persistence.dir/bench_e8_persistence.cpp.o"
  "CMakeFiles/bench_e8_persistence.dir/bench_e8_persistence.cpp.o.d"
  "bench_e8_persistence"
  "bench_e8_persistence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_persistence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
