file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_collectives.dir/bench_e11_collectives.cpp.o"
  "CMakeFiles/bench_e11_collectives.dir/bench_e11_collectives.cpp.o.d"
  "bench_e11_collectives"
  "bench_e11_collectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
