# Empty compiler generated dependencies file for bench_e3_compute_vs_data.
# This may be replaced when dependencies are built.
