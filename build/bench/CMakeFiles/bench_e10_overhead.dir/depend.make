# Empty dependencies file for bench_e10_overhead.
# This may be replaced when dependencies are built.
