file(REMOVE_RECURSE
  "CMakeFiles/bench_e13_kv_store.dir/bench_e13_kv_store.cpp.o"
  "CMakeFiles/bench_e13_kv_store.dir/bench_e13_kv_store.cpp.o.d"
  "bench_e13_kv_store"
  "bench_e13_kv_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e13_kv_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
