
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_e13_kv_store.cpp" "bench/CMakeFiles/bench_e13_kv_store.dir/bench_e13_kv_store.cpp.o" "gcc" "bench/CMakeFiles/bench_e13_kv_store.dir/bench_e13_kv_store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fft/CMakeFiles/oopp_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/array/CMakeFiles/oopp_array.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/oopp_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/dsm/CMakeFiles/oopp_dsm.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/oopp_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/oopp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/oopp_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/oopp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/oopp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
