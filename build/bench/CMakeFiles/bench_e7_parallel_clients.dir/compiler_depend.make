# Empty compiler generated dependencies file for bench_e7_parallel_clients.
# This may be replaced when dependencies are built.
