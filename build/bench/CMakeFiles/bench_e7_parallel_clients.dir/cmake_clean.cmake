file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_parallel_clients.dir/bench_e7_parallel_clients.cpp.o"
  "CMakeFiles/bench_e7_parallel_clients.dir/bench_e7_parallel_clients.cpp.o.d"
  "bench_e7_parallel_clients"
  "bench_e7_parallel_clients.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_parallel_clients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
