# Empty dependencies file for bench_e4_split_loop.
# This may be replaced when dependencies are built.
