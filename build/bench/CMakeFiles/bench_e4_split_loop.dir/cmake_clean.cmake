file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_split_loop.dir/bench_e4_split_loop.cpp.o"
  "CMakeFiles/bench_e4_split_loop.dir/bench_e4_split_loop.cpp.o.d"
  "bench_e4_split_loop"
  "bench_e4_split_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_split_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
