# Empty dependencies file for oopp_noded.
# This may be replaced when dependencies are built.
