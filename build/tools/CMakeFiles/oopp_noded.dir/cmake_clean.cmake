file(REMOVE_RECURSE
  "CMakeFiles/oopp_noded.dir/oopp_noded.cpp.o"
  "CMakeFiles/oopp_noded.dir/oopp_noded.cpp.o.d"
  "oopp_noded"
  "oopp_noded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oopp_noded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
