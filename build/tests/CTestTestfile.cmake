# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_serial[1]_include.cmake")
include("/root/repo/build/tests/test_thread_pool[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_rpc[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_storage[1]_include.cmake")
include("/root/repo/build/tests/test_array[1]_include.cmake")
include("/root/repo/build/tests/test_fft[1]_include.cmake")
include("/root/repo/build/tests/test_coll[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_stress[1]_include.cmake")
include("/root/repo/build/tests/test_faults[1]_include.cmake")
include("/root/repo/build/tests/test_mesh[1]_include.cmake")
include("/root/repo/build/tests/test_misc[1]_include.cmake")
include("/root/repo/build/tests/test_kv[1]_include.cmake")
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_dsm[1]_include.cmake")
