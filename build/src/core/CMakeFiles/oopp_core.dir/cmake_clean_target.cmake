file(REMOVE_RECURSE
  "liboopp_core.a"
)
