# Empty compiler generated dependencies file for oopp_core.
# This may be replaced when dependencies are built.
