file(REMOVE_RECURSE
  "CMakeFiles/oopp_core.dir/cluster.cpp.o"
  "CMakeFiles/oopp_core.dir/cluster.cpp.o.d"
  "liboopp_core.a"
  "liboopp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oopp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
