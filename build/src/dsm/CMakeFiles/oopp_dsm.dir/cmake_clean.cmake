file(REMOVE_RECURSE
  "CMakeFiles/oopp_dsm.dir/page_cache.cpp.o"
  "CMakeFiles/oopp_dsm.dir/page_cache.cpp.o.d"
  "liboopp_dsm.a"
  "liboopp_dsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oopp_dsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
