file(REMOVE_RECURSE
  "liboopp_dsm.a"
)
