# Empty compiler generated dependencies file for oopp_dsm.
# This may be replaced when dependencies are built.
