file(REMOVE_RECURSE
  "CMakeFiles/oopp_storage.dir/array_page_device.cpp.o"
  "CMakeFiles/oopp_storage.dir/array_page_device.cpp.o.d"
  "CMakeFiles/oopp_storage.dir/page_device.cpp.o"
  "CMakeFiles/oopp_storage.dir/page_device.cpp.o.d"
  "liboopp_storage.a"
  "liboopp_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oopp_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
