# Empty compiler generated dependencies file for oopp_storage.
# This may be replaced when dependencies are built.
