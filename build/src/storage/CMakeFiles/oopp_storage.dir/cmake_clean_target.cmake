file(REMOVE_RECURSE
  "liboopp_storage.a"
)
