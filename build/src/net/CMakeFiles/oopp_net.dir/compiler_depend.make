# Empty compiler generated dependencies file for oopp_net.
# This may be replaced when dependencies are built.
