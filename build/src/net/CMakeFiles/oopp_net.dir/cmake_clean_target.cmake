file(REMOVE_RECURSE
  "liboopp_net.a"
)
