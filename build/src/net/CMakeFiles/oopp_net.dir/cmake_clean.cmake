file(REMOVE_RECURSE
  "CMakeFiles/oopp_net.dir/tcp_fabric.cpp.o"
  "CMakeFiles/oopp_net.dir/tcp_fabric.cpp.o.d"
  "CMakeFiles/oopp_net.dir/tcp_mesh_fabric.cpp.o"
  "CMakeFiles/oopp_net.dir/tcp_mesh_fabric.cpp.o.d"
  "liboopp_net.a"
  "liboopp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oopp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
