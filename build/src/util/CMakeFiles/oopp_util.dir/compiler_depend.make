# Empty compiler generated dependencies file for oopp_util.
# This may be replaced when dependencies are built.
