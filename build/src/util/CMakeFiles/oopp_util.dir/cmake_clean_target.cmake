file(REMOVE_RECURSE
  "liboopp_util.a"
)
