file(REMOVE_RECURSE
  "CMakeFiles/oopp_util.dir/thread_pool.cpp.o"
  "CMakeFiles/oopp_util.dir/thread_pool.cpp.o.d"
  "liboopp_util.a"
  "liboopp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oopp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
