
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/array/array.cpp" "src/array/CMakeFiles/oopp_array.dir/array.cpp.o" "gcc" "src/array/CMakeFiles/oopp_array.dir/array.cpp.o.d"
  "/root/repo/src/array/block_storage.cpp" "src/array/CMakeFiles/oopp_array.dir/block_storage.cpp.o" "gcc" "src/array/CMakeFiles/oopp_array.dir/block_storage.cpp.o.d"
  "/root/repo/src/array/copy.cpp" "src/array/CMakeFiles/oopp_array.dir/copy.cpp.o" "gcc" "src/array/CMakeFiles/oopp_array.dir/copy.cpp.o.d"
  "/root/repo/src/array/domain.cpp" "src/array/CMakeFiles/oopp_array.dir/domain.cpp.o" "gcc" "src/array/CMakeFiles/oopp_array.dir/domain.cpp.o.d"
  "/root/repo/src/array/page_map.cpp" "src/array/CMakeFiles/oopp_array.dir/page_map.cpp.o" "gcc" "src/array/CMakeFiles/oopp_array.dir/page_map.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/oopp_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/oopp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/oopp_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/oopp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/oopp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
