# Empty dependencies file for oopp_array.
# This may be replaced when dependencies are built.
