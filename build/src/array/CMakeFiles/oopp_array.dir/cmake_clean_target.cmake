file(REMOVE_RECURSE
  "liboopp_array.a"
)
