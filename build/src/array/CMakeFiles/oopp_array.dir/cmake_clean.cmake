file(REMOVE_RECURSE
  "CMakeFiles/oopp_array.dir/array.cpp.o"
  "CMakeFiles/oopp_array.dir/array.cpp.o.d"
  "CMakeFiles/oopp_array.dir/block_storage.cpp.o"
  "CMakeFiles/oopp_array.dir/block_storage.cpp.o.d"
  "CMakeFiles/oopp_array.dir/copy.cpp.o"
  "CMakeFiles/oopp_array.dir/copy.cpp.o.d"
  "CMakeFiles/oopp_array.dir/domain.cpp.o"
  "CMakeFiles/oopp_array.dir/domain.cpp.o.d"
  "CMakeFiles/oopp_array.dir/page_map.cpp.o"
  "CMakeFiles/oopp_array.dir/page_map.cpp.o.d"
  "liboopp_array.a"
  "liboopp_array.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oopp_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
