file(REMOVE_RECURSE
  "CMakeFiles/oopp_fft.dir/fft.cpp.o"
  "CMakeFiles/oopp_fft.dir/fft.cpp.o.d"
  "CMakeFiles/oopp_fft.dir/fft3d.cpp.o"
  "CMakeFiles/oopp_fft.dir/fft3d.cpp.o.d"
  "CMakeFiles/oopp_fft.dir/fft_worker.cpp.o"
  "CMakeFiles/oopp_fft.dir/fft_worker.cpp.o.d"
  "CMakeFiles/oopp_fft.dir/out_of_core.cpp.o"
  "CMakeFiles/oopp_fft.dir/out_of_core.cpp.o.d"
  "CMakeFiles/oopp_fft.dir/plan.cpp.o"
  "CMakeFiles/oopp_fft.dir/plan.cpp.o.d"
  "liboopp_fft.a"
  "liboopp_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oopp_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
