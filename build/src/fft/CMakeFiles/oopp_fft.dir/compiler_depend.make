# Empty compiler generated dependencies file for oopp_fft.
# This may be replaced when dependencies are built.
