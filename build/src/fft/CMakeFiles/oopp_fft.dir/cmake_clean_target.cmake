file(REMOVE_RECURSE
  "liboopp_fft.a"
)
