file(REMOVE_RECURSE
  "CMakeFiles/oopp_kv.dir/kv_store.cpp.o"
  "CMakeFiles/oopp_kv.dir/kv_store.cpp.o.d"
  "liboopp_kv.a"
  "liboopp_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oopp_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
