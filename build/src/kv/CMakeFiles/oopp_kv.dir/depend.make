# Empty dependencies file for oopp_kv.
# This may be replaced when dependencies are built.
