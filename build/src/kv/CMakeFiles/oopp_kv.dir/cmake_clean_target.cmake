file(REMOVE_RECURSE
  "liboopp_kv.a"
)
