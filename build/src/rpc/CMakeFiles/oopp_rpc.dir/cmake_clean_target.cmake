file(REMOVE_RECURSE
  "liboopp_rpc.a"
)
