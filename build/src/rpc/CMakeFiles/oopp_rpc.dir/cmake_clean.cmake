file(REMOVE_RECURSE
  "CMakeFiles/oopp_rpc.dir/class_registry.cpp.o"
  "CMakeFiles/oopp_rpc.dir/class_registry.cpp.o.d"
  "CMakeFiles/oopp_rpc.dir/node.cpp.o"
  "CMakeFiles/oopp_rpc.dir/node.cpp.o.d"
  "CMakeFiles/oopp_rpc.dir/object_table.cpp.o"
  "CMakeFiles/oopp_rpc.dir/object_table.cpp.o.d"
  "liboopp_rpc.a"
  "liboopp_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oopp_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
