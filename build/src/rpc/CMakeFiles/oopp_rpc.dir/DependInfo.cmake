
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rpc/class_registry.cpp" "src/rpc/CMakeFiles/oopp_rpc.dir/class_registry.cpp.o" "gcc" "src/rpc/CMakeFiles/oopp_rpc.dir/class_registry.cpp.o.d"
  "/root/repo/src/rpc/node.cpp" "src/rpc/CMakeFiles/oopp_rpc.dir/node.cpp.o" "gcc" "src/rpc/CMakeFiles/oopp_rpc.dir/node.cpp.o.d"
  "/root/repo/src/rpc/object_table.cpp" "src/rpc/CMakeFiles/oopp_rpc.dir/object_table.cpp.o" "gcc" "src/rpc/CMakeFiles/oopp_rpc.dir/object_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/oopp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/oopp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
