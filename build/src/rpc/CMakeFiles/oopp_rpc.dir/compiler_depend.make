# Empty compiler generated dependencies file for oopp_rpc.
# This may be replaced when dependencies are built.
