#!/usr/bin/env python3
"""Merge per-node oopp trace dumps into one causally ordered timeline.

Each node's SpanSink dumps `trace_node<N>.json` (see Cluster::dump_trace).
This tool stitches those files together: spans are grouped by trace id,
linked parent -> child across nodes, and printed as an indented tree in
start-time order, so a cross-machine call chain reads top to bottom.

Usage:
    oopp_trace.py DIR|FILE...              human-readable timeline
    oopp_trace.py --json DIR|FILE...       merged span list as JSON
    oopp_trace.py --check-chain a,b,c DIR  exit 0 iff a span named `a` has a
                                           descendant `b` which has a
                                           descendant `c` (names in order,
                                           intermediate spans allowed)

No third-party dependencies; stdlib only.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import signal
import sys
from pathlib import Path

# Die quietly when the reader of our stdout goes away (e.g. `| head`).
with contextlib.suppress(AttributeError, ValueError):
    signal.signal(signal.SIGPIPE, signal.SIG_DFL)


def expand(args: list[str]) -> list[Path]:
    """Directories expand to their trace_node*.json files."""
    out: list[Path] = []
    for a in args:
        p = Path(a)
        if p.is_dir():
            out.extend(sorted(p.glob("trace_node*.json")))
        else:
            out.append(p)
    return out


def load_spans(paths: list[Path]) -> tuple[list[dict], int]:
    spans: list[dict] = []
    dropped = 0
    for p in paths:
        doc = json.loads(p.read_text())
        dropped += int(doc.get("dropped", 0))
        spans.extend(doc.get("spans", []))
    return spans, dropped


def build_forest(spans: list[dict]) -> tuple[list[dict], dict[int, list[dict]]]:
    """Return (roots, children-by-span-id), both in start_ns order.

    A span whose parent is unknown (parent_id == 0, or the parent's sink
    ring overflowed) becomes a root rather than being dropped.
    """
    by_id = {s["span_id"]: s for s in spans}
    children: dict[int, list[dict]] = {}
    roots: list[dict] = []
    for s in sorted(spans, key=lambda s: s["start_ns"]):
        pid = s.get("parent_id", 0)
        if pid and pid in by_id:
            children.setdefault(pid, []).append(s)
        else:
            roots.append(s)
    return roots, children


def has_chain(spans: list[dict], children: dict[int, list[dict]],
              names: list[str]) -> bool:
    def descend(span: dict, rest: list[str]) -> bool:
        if not rest:
            return True
        for c in children.get(span["span_id"], []):
            if c["name"] == rest[0] and descend(c, rest[1:]):
                return True
            if descend(c, rest):  # skip intermediate spans
                return True
        return False

    return any(s["name"] == names[0] and descend(s, names[1:])
               for s in spans)


def print_timeline(spans: list[dict], children: dict[int, list[dict]],
                   roots: list[dict]) -> None:
    traces: dict[int, list[dict]] = {}
    for r in roots:
        traces.setdefault(r["trace_id"], []).append(r)

    def emit(span: dict, depth: int, t0: int) -> None:
        dur_us = (span["end_ns"] - span["start_ns"]) / 1e3
        rel_us = (span["start_ns"] - t0) / 1e3
        status = "" if span.get("status", 0) == 0 else \
            f"  status={span['status']}"
        print(f"  {'  ' * depth}[n{span['node']} {span['kind']:<6}] "
              f"{span['name']:<40} +{rel_us:10.1f}us {dur_us:10.1f}us"
              f"  span={span['span_id']:x} parent={span['parent_id']:x}"
              f"{status}")
        for c in children.get(span["span_id"], []):
            emit(c, depth + 1, t0)

    for tid in sorted(traces, key=lambda t: traces[t][0]["start_ns"]):
        count = sum(1 for s in spans if s["trace_id"] == tid)
        nodes = sorted({s["node"] for s in spans if s["trace_id"] == tid})
        print(f"trace {tid:x} ({count} spans, nodes {nodes})")
        t0 = traces[tid][0]["start_ns"]
        for r in traces[tid]:
            emit(r, 0, t0)
        print()


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("inputs", nargs="+",
                    help="trace_node*.json files or directories of them")
    ap.add_argument("--json", action="store_true",
                    help="emit the merged span list as JSON instead of text")
    ap.add_argument("--check-chain", metavar="A,B,C",
                    help="exit 0 iff the named ancestor chain exists")
    args = ap.parse_args()

    paths = expand(args.inputs)
    if not paths:
        print("oopp_trace: no trace files found", file=sys.stderr)
        return 2
    spans, dropped = load_spans(paths)
    roots, children = build_forest(spans)

    if args.check_chain:
        names = args.check_chain.split(",")
        ok = has_chain(spans, children, names)
        print(f"chain {' -> '.join(names)}: {'FOUND' if ok else 'MISSING'}")
        return 0 if ok else 1

    if args.json:
        json.dump({"dropped": dropped,
                   "spans": sorted(spans, key=lambda s: s["start_ns"])},
                  sys.stdout, indent=1)
        print()
        return 0

    print(f"{len(spans)} spans from {len(paths)} node(s), "
          f"{dropped} dropped")
    print_timeline(spans, children, roots)
    return 0


if __name__ == "__main__":
    sys.exit(main())
