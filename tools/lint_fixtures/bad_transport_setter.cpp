// Fixture: deprecated per-fabric transport setters outside src/net/.
namespace fixture {

struct FakeFabric {
  struct BatchOptions {
    bool enabled = false;
  };
  // Even re-declaring the deprecated setter outside src/net/ is flagged:
  // the surface may not fork.
  void set_batching(const BatchOptions&) {}  // LINT-EXPECT: deprecated-transport-setter
  BatchOptions batching() const { return {}; }
  BatchOptions options_batch() const { return {}; }
};

inline void configure(FakeFabric& fabric) {
  fabric.set_batching({});  // LINT-EXPECT: deprecated-transport-setter
  (void)fabric.batching();  // LINT-EXPECT: deprecated-transport-setter
  // The replacement spelling stays legal.
  (void)fabric.options_batch();
}

}  // namespace fixture
