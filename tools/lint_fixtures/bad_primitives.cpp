// Fixture: raw thread primitives and detach outside src/util/.
#include <condition_variable>
#include <mutex>
#include <thread>

namespace fixture {

class Racy {
 public:
  void start() {
    worker_ = std::thread([] {});  // LINT-EXPECT: raw-thread-primitive
    worker_.detach();              // LINT-EXPECT: thread-detach
  }

 private:
  std::mutex mu_;                  // LINT-EXPECT: raw-thread-primitive
  std::condition_variable cv_;     // LINT-EXPECT: raw-thread-primitive
  std::thread worker_;             // LINT-EXPECT: raw-thread-primitive
};

// Mentions in comments or strings must NOT be flagged:
//   std::mutex, detach(), inbox_.pop()
inline const char* kDoc = "never call detach() or std::mutex directly";

// A suppressed use is also clean:
inline void suppressed_owner() {
  std::thread t([] {});  // oopp-lint: allow(raw-thread-primitive)
  t.join();
}

}  // namespace fixture
