// Fixture: hand-rolled batch-frame framing outside src/net/.
#include <cstddef>
#include <cstdint>
#include <vector>

namespace fixture {

// Re-declaring the framing constants forks the codec.
constexpr std::uint8_t kBatchMagic = 0xB5;  // LINT-EXPECT: raw-batch-header
inline std::vector<std::byte> hand_rolled_batch(std::size_t frames) {
  std::vector<std::byte> out;
  out.push_back(std::byte{0xB5});  // LINT-EXPECT: raw-batch-header
  out.push_back(std::byte{1});
  (void)frames;
  return out;
}

// Naming the codec entry points outside net::wire is flagged too: parsing
// belongs to the FrameReader alone.
inline void parse(const std::byte* p) {
  decode_batch_header(p);  // LINT-EXPECT: raw-batch-header
}

}  // namespace fixture
