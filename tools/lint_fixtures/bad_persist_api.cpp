// Fixture: the deprecated raw registry surface outside src/core/.
namespace fixture {

struct NameService {
  void put(int, int) {}
  int get(int) { return 0; }
  bool erase(int) { return false; }
  void bind(int, int) {}
  int resolve(int) { return 0; }
  bool unbind(int) { return false; }
};

// Naming the raw record type outside src/core/ is flagged: records are
// minted by the Cluster facade, never by hand.
struct PersistRecord {  // LINT-EXPECT: deprecated-persist-api
  int live_machine = -1;
};

template <auto M>
void call_through() {}

inline void migrate_me() {
  call_through<&NameService::put>();    // LINT-EXPECT: deprecated-persist-api
  call_through<&NameService::get>();    // LINT-EXPECT: deprecated-persist-api
  call_through<&NameService::erase>();  // LINT-EXPECT: deprecated-persist-api
  // The canonical spellings stay legal.
  call_through<&NameService::bind>();
  call_through<&NameService::resolve>();
  call_through<&NameService::unbind>();
}

}  // namespace fixture
