// Fixture for oopp_lint's lock-across-future-get rule.  Not compiled —
// linted by the self-test; LINT-EXPECT marks the violations the rule must
// report (and nothing else).
#include "core/future.hpp"
#include "util/checked_mutex.hpp"

namespace oopp::fixture {

struct Svc {
  util::CheckedMutex mu_{"fixture.Svc"};
  int cached_ = 0;

  int blocking_under_lock(Future<int> fut) {
    std::unique_lock<util::CheckedMutex> lock(mu_);
    return cached_ + fut.get();  // LINT-EXPECT: lock-across-future-get
  }

  int bounded_wait_still_holds(Future<int> fut) {
    std::lock_guard<util::CheckedMutex> g(mu_);
    return fut.get_for(kTimeout);  // LINT-EXPECT: lock-across-future-get
  }

  int unlock_before_wait(Future<int> fut) {
    std::unique_lock<util::CheckedMutex> lock(mu_);
    cached_ += 1;
    lock.unlock();
    return fut.get();  // clean: the guard was released before the wait
  }

  int pointer_get_is_not_a_future() {
    std::lock_guard<util::CheckedMutex> g(mu_);
    return *entry()->second.get();  // clean: smart-pointer get via ->
  }

  int sanctioned(Future<int> fut) {
    std::unique_lock<util::CheckedMutex> lock(mu_);
    // oopp-lint: allow(lock-across-future-get) documented exception
    return fut.get();
  }
};

}  // namespace oopp::fixture
