// Fixture: hand-assembled net::Message headers outside src/net/.
#include <cstdint>

namespace fixture {

struct FakeHeader {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint64_t trace_id = 0;
};

struct FakeMessage {
  FakeHeader header;
};

// Naming the header type outside src/net/ is itself a violation: the only
// sanctioned constructors are net::make_request / net::make_response.
using Header = MessageHeader;  // LINT-EXPECT: raw-message-header

inline FakeMessage hand_built() {
  FakeMessage m;
  m.header.src = 0;       // LINT-EXPECT: raw-message-header
  m.header.dst = 1;       // LINT-EXPECT: raw-message-header
  m.header.trace_id = 7;  // LINT-EXPECT: raw-message-header
  return m;
}

// Reads and comparisons of header fields are fine — only writes are banned.
inline bool clean_reads(const FakeMessage& m) {
  return m.header.src == 0 && m.header.dst == m.header.src;
}

// The suppression comment works here like everywhere else.
inline FakeMessage suppressed_build() {
  FakeMessage m;
  m.header.src = 2;  // oopp-lint: allow(raw-message-header)
  return m;
}

}  // namespace fixture
