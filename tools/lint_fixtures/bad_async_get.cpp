// Fixture: an async call collected in the same statement — a blocking
// call with extra steps.  The async spelling only pays off when work (or
// more calls) happen between issue and get().
#include <utility>
#include <vector>

namespace fixture {

template <class R>
struct FakeFuture {
  R get() { return R{}; }
};

struct FakePtr {
  template <auto M, class... A>
  FakeFuture<int> async(A&&...) const {
    return {};
  }
  FakeFuture<int> async_ping() const { return {}; }
};

inline int collapses_the_overlap(const FakePtr& p) {
  int sum = p.async<nullptr>(1, 2).get();     // LINT-EXPECT: async-then-immediate-get
  sum += p.async_ping().get();                // LINT-EXPECT: async-then-immediate-get
  sum += p.async<nullptr>(std::vector<int>{1, 2})  // LINT-EXPECT: async-then-immediate-get
             .get();

  // The sanctioned shapes: hold the future, overlap, then collect…
  auto fut = p.async<nullptr>(3);
  sum += p.async_ping().get();  // oopp-lint: allow(async-then-immediate-get)
  sum += fut.get();
  return sum;
}

}  // namespace fixture
