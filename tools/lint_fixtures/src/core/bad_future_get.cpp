// Fixture: bare Future::get() in a hot path (this file sits under a
// src/core/ subpath on purpose so the scoped rule applies).
namespace fixture {

template <class R>
struct FakeFuture {
  R get() { return R{}; }
  R get_for(int) { return R{}; }
  int get_expected() { return 0; }
};

struct FakeHandle {
  FakeFuture<int> async_ping() { return {}; }
};

inline int hot_path() {
  FakeFuture<int> fut;
  int acc = fut.get();                     // LINT-EXPECT: future-bare-get
  FakeHandle h;
  acc += h.async_ping().get();             // LINT-EXPECT: future-bare-get LINT-EXPECT: async-then-immediate-get
  FakeFuture<int>* pf = &fut;
  acc += pf->get();                        // LINT-EXPECT: future-bare-get
  return acc;
}

// Bounded and typed accessors must NOT be flagged.
inline int clean_path() {
  FakeFuture<int> fut;
  int acc = fut.get_for(50);
  acc += fut.get_expected();
  // A documented unbounded wait is suppressible in place.
  acc += fut.get();  // oopp-lint: allow(future-bare-get)
  return acc;
}

// Smart-pointer style access through a subscript is not a future get.
struct Slot {
  int get() { return 0; }
};
inline int subscripted() {
  Slot slots[2];
  return slots[0].get() + slots[1].get();
}

}  // namespace fixture
