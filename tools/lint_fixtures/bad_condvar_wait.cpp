// Fixture for oopp_lint's condvar-wait-no-predicate rule.  Not compiled —
// linted by the self-test; LINT-EXPECT marks the violations the rule must
// report (and nothing else).  The CondVar declaration below is what feeds
// the pre-pass that names `ready_cv_` a condition variable.
#include "util/checked_mutex.hpp"

namespace oopp::fixture {

class WorkQueue {
 public:
  void drain() {
    std::unique_lock<util::CheckedMutex> lock(mu_);
    ready_cv_.wait(lock);  // LINT-EXPECT: condvar-wait-no-predicate
    ready_cv_.wait_until(lock, deadline());  // LINT-EXPECT: condvar-wait-no-predicate
    ready_cv_.wait(lock, [this] { return ready_; });  // clean: predicate
    ready_cv_.wait_until(lock, deadline(),
                         [this] { return ready_; });  // clean: predicate
    // oopp-lint: allow(condvar-wait-no-predicate) loop re-checks state
    ready_cv_.wait(lock);
  }

 private:
  util::CheckedMutex mu_{"fixture.WorkQueue"};
  util::CondVar ready_cv_;
  bool ready_ = false;
};

}  // namespace oopp::fixture
