// Fixture: the pre-unification remote-call spellings, removed in PR 4.
#include <vector>

namespace fixture {

struct FakeGroup {
  template <auto M, class... A>
  void call(const A&...) const {}
  template <auto M, class... A>
  std::vector<int> gather(const A&...) const { return {}; }
};

inline void uses_removed_spellings(const FakeGroup& g) {
  g.call_all();                         // LINT-EXPECT: removed-alias
  g.async_all();                        // LINT-EXPECT: removed-alias
  g.invoke_all();                       // LINT-EXPECT: removed-alias
  g.invoke_all_indexed();               // LINT-EXPECT: removed-alias
  auto xs = g.collect<nullptr>();       // LINT-EXPECT: removed-alias
  (void)xs;
}

// The error alias is gone too.
using err = rpc_error;  // LINT-EXPECT: removed-alias

// The English word `collect` outside member-call syntax stays legal, as
// do the gather_* spellings that merely contain it.
inline int collect_partial_impl() { return 0; }
inline void clean(const FakeGroup& g) {
  g.call<nullptr>();
  (void)g.gather<nullptr>();
  (void)collect_partial_impl();
}

}  // namespace fixture
