// Fixture: blocking Inbox::pop() outside the node receiver loop.
#include <optional>

namespace fixture {

struct FakeMessage {};

struct FakeInbox {
  std::optional<FakeMessage> pop() { return std::nullopt; }
};

class Servant {
 public:
  void handle() {
    // Blocking pop on a dispatch thread stalls the whole machine.
    auto m = inbox_.pop();       // LINT-EXPECT: inbox-pop-dispatch
    (void)m;
    auto n = inbox().pop();      // LINT-EXPECT: inbox-pop-dispatch
    (void)n;
  }

  FakeInbox& inbox() { return inbox_; }

 private:
  FakeInbox inbox_;
};

// pop() on a non-inbox container must NOT be flagged.
struct Stack {
  int pop() { return 0; }
};
inline int clean_pop() {
  Stack pending;
  return pending.pop();
}

}  // namespace fixture
