// Fixture for oopp_lint's dispatch-thread-blocking rule.  Not compiled —
// linted by the self-test; LINT-EXPECT marks the violations the rule must
// report (and nothing else).  The class_def<DispatchWorker> specialization
// below is what the pre-pass uses to mark DispatchWorker a servant.
namespace oopp::fixture {

struct Ctx;

class DispatchWorker {
 public:
  void step(Ctx& ctx);
  void inline_step(Ctx& ctx) {
    ctx.barrier();  // LINT-EXPECT: dispatch-thread-blocking
  }
};

template <>
struct class_def<DispatchWorker> {
  static const char* name() { return "fixture.DispatchWorker"; }
};

void DispatchWorker::step(Ctx& ctx) {
  ctx.gather<&DispatchWorker::step>(0);  // LINT-EXPECT: dispatch-thread-blocking
  coll::barrier_all(ctx);  // LINT-EXPECT: dispatch-thread-blocking
  ctx.call<&DispatchWorker::step>(0);  // clean: point-to-point call
  // oopp-lint: allow(dispatch-thread-blocking) pool sized for this site
  ctx.gather_indexed<&DispatchWorker::step>(0);
}

class PlainHelper {
 public:
  // clean: PlainHelper has no class_def specialization, so its methods do
  // not run on dispatch threads.
  void run(Ctx& ctx) { ctx.gather<&DispatchWorker::step>(0); }
};

}  // namespace oopp::fixture
