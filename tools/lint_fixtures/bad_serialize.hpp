// Fixture: oopp_serialize that silently drops members.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fixture {

struct ProbeReport {
  std::uint64_t target = 0;
  int probes = 0;
  int failures = 0;  // LINT-EXPECT: serialize-coverage
  std::string note;  // LINT-EXPECT: serialize-coverage
};

template <class Ar>
void oopp_serialize(Ar& ar, ProbeReport& r) {
  ar | r.target | r.probes;  // forgot failures and note
}

// A fully-covered struct right next to it must NOT be flagged.
struct GoodRecord {
  std::vector<double> values;
  double checksum = 0.0;

  [[nodiscard]] bool empty() const { return values.empty(); }
};

template <class Ar>
void oopp_serialize(Ar& ar, GoodRecord& g) {
  ar | g.values | g.checksum;
}

// Covered via a temporary (enum-as-int idiom) — also clean.
struct StateRecord {
  int state = 0;
};

template <class Ar>
void oopp_serialize(Ar& ar, StateRecord& s) {
  int state = s.state;
  ar | state;
  s.state = state;
}

}  // namespace fixture
