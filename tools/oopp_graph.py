#!/usr/bin/env python3
"""Merge per-node oopp lock-graph dumps and report deadlock cycles.

Each process dumps `lockgraph_node<N>.json` (see Cluster::dump_lockgraph):
its lock classes (name + 32-bit wire hash), the local lock-order edges the
runtime checker recorded (with the recording thread's held stack), and the
*cross-node* edges recorded while serving RPCs under OOPP_DIST_LOCK_CHECK
(remote-held class -> locally acquired class, tagged with the RPC method
and the calling peer).

This tool unions those dumps into one directed graph over lock classes and
reports every cycle — including cycles that span >= 2 nodes, which no
single process's online checker can see (each node's local lockdep only
ever observes its own held stacks).  Reports are lockdep-style: for each
edge of the cycle, the call path that recorded it.

Usage:
    oopp_graph.py DIR|FILE...              human-readable cycle report
    oopp_graph.py --json DIR|FILE...       merged graph as JSON
    oopp_graph.py --check DIR|FILE...      exit 0 iff no cycle (CI gate)
    oopp_graph.py --local-only ...         ignore cross-node edges

No third-party dependencies; stdlib only.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import signal
import sys
from pathlib import Path

# Die quietly when the reader of our stdout goes away (e.g. `| head`).
with contextlib.suppress(AttributeError, ValueError):
    signal.signal(signal.SIGPIPE, signal.SIG_DFL)


def expand(args: list[str]) -> list[Path]:
    """Directories expand to their lockgraph_node*.json files."""
    out: list[Path] = []
    for a in args:
        p = Path(a)
        if p.is_dir():
            out.extend(sorted(p.glob("lockgraph_node*.json")))
        else:
            out.append(p)
    return out


def load_graph(paths: list[Path]) -> dict:
    """Union the dumps: hash->name table, local edges, cross edges."""
    by_hash: dict[int, str] = {}
    local_edges: list[dict] = []
    cross_edges: list[dict] = []
    for p in paths:
        doc = json.loads(p.read_text())
        node = doc.get("node", 0)
        for c in doc.get("classes", []):
            by_hash.setdefault(c["hash"], c["name"])
        for e in doc.get("local_edges", []):
            e = dict(e)
            e["dump_node"] = node
            local_edges.append(e)
        for e in doc.get("cross_edges", []):
            e = dict(e)
            e["dump_node"] = node
            cross_edges.append(e)
    # Resolve cross-edge sources: the dumping process may never have seen
    # the remote class name, but some other dump's class table has it.
    for e in cross_edges:
        if not e.get("from"):
            e["from"] = by_hash.get(e["from_hash"],
                                    f"class#{e['from_hash']:08x}")
    return {"classes": by_hash, "local_edges": local_edges,
            "cross_edges": cross_edges}


def build_adjacency(graph: dict, local_only: bool) -> dict[str, dict]:
    """name -> {name -> [provenance edges]} (parallel edges kept)."""
    adj: dict[str, dict[str, list[dict]]] = {}
    edges = graph["local_edges"] + (
        [] if local_only else graph["cross_edges"])
    for e in edges:
        adj.setdefault(e["from"], {}).setdefault(e["to"], []).append(e)
    return adj


def find_cycles(adj: dict[str, dict]) -> list[list[str]]:
    """Elementary cycles, deduplicated by their set of classes.

    DFS from every class; a back edge to a node on the current path
    closes a cycle.  Lock graphs are small (tens of classes), so the
    simple quadratic search is fine.
    """
    cycles: list[list[str]] = []
    seen_keys: set[frozenset] = set()

    def dfs(start: str, cur: str, path: list[str],
            on_path: set[str]) -> None:
        for nxt in adj.get(cur, {}):
            if nxt == start:
                key = frozenset(path)
                if key not in seen_keys:
                    seen_keys.add(key)
                    cycles.append(path + [start])
            elif nxt not in on_path and nxt > start:
                # Only walk classes ordered after `start`: each cycle is
                # found exactly once, rooted at its smallest class.
                on_path.add(nxt)
                dfs(start, nxt, path + [nxt], on_path)
                on_path.discard(nxt)

    for start in sorted(adj):
        dfs(start, start, [start], {start})
    return cycles


def describe_edge(e: dict) -> list[str]:
    """The call path that recorded one edge, lockdep-style."""
    if "method" in e:  # cross-node edge
        return [f"cross-node: a caller on node {e['peer']} held "
                f"'{e['from']}' while invoking rpc method '{e['method']}'; "
                f"serving node {e['node']} then acquired '{e['to']}' "
                f"(seen {e.get('count', 1)}x)"]
    lines = [f"node {e['dump_node']} process, thread {e.get('thread', '?')} "
             f"acquired '{e['to']}' while holding:"]
    for i, cls in enumerate(e.get("holder_stack", [])):
        lines.append(f"  [{i}] {cls}")
    return lines


def print_cycles(cycles: list[list[str]], adj: dict[str, dict]) -> None:
    for n, cyc in enumerate(cycles, 1):
        print(f"cycle {n}: {' -> '.join(cyc)}")
        print()
        for a, b in zip(cyc, cyc[1:]):
            for e in adj[a][b]:
                print(f"  edge '{a}' -> '{b}':")
                for line in describe_edge(e):
                    print(f"    {line}")
        print()


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("inputs", nargs="+",
                    help="lockgraph_node*.json files or directories")
    ap.add_argument("--json", action="store_true",
                    help="emit the merged graph as JSON instead of text")
    ap.add_argument("--check", action="store_true",
                    help="exit 1 iff any lock-order cycle exists (CI gate)")
    ap.add_argument("--local-only", action="store_true",
                    help="ignore cross-node edges (per-process view)")
    args = ap.parse_args()

    paths = expand(args.inputs)
    if not paths:
        print("oopp_graph: no lockgraph files found", file=sys.stderr)
        return 2
    graph = load_graph(paths)

    if args.json:
        json.dump(graph, sys.stdout, indent=1)
        print()
        return 0

    adj = build_adjacency(graph, args.local_only)
    cycles = find_cycles(adj)
    n_cross = 0 if args.local_only else len(graph["cross_edges"])
    print(f"{len(graph['classes'])} lock classes, "
          f"{len(graph['local_edges'])} local edges, "
          f"{n_cross} cross-node edges from {len(paths)} dump(s)")
    if cycles:
        print(f"{len(cycles)} lock-order cycle(s) found:\n")
        print_cycles(cycles, adj)
    else:
        print("no lock-order cycles")
    if args.check:
        return 1 if cycles else 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
