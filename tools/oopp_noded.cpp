// oopp_noded: a standalone machine of a multi-process OOPP cluster.
//
// Usage:   oopp_noded <machine-id> <endpoints-file>
//
// The endpoints file lists one "host port" pair per line; the line number
// is the machine id.  Every process of the cluster (the driver included)
// uses the same file.  This daemon binds its own line's port, serves
// remote object construction and method execution until some client sends
// the shutdown control request, then exits cleanly.
//
// The protocol a node can serve is whatever was compiled in: this binary
// registers every remotable class shipped with the library.  Deployments
// with their own classes link their registrations into their own node
// binary — exactly the "same registration code on both sides" contract
// that replaces the paper's compiler.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "array/array.hpp"
#include "coll/collectives.hpp"
#include "core/oopp.hpp"
#include "fft/fft_worker.hpp"
#include "dsm/page_cache.hpp"
#include "kv/kv_store.hpp"
#include "storage/array_page_device.hpp"
#include "storage/page_device.hpp"

namespace {

void register_shipped_classes() {
  using namespace oopp;
  rpc::register_class<NameService>();
  rpc::register_class<Watchdog>();
  rpc::register_class<RemoteVector<double>>();
  rpc::register_class<RemoteVector<float>>();
  rpc::register_class<RemoteVector<int>>();
  rpc::register_class<storage::PageDevice>();
  rpc::register_class<storage::ArrayPageDevice>();
  rpc::register_class<array::Array>();
  rpc::register_class<fft::FFTWorker>();
  rpc::register_class<fft::GroupDirectory>();
  rpc::register_class<coll::CollWorker<double>>();
  rpc::register_class<kv::KvShard>();
  rpc::register_class<dsm::CoherentDevice>();
  rpc::register_class<dsm::PageCache>();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: %s <machine-id> <endpoints-file>\n",
                 argv[0]);
    return 2;
  }
  const auto machine =
      static_cast<oopp::net::MachineId>(std::strtoul(argv[1], nullptr, 10));
  const std::string endpoints_file = argv[2];

  try {
    register_shipped_classes();

    oopp::Cluster::Options opts;
    opts.mesh_endpoints = oopp::net::load_endpoints(endpoints_file);
    opts.local_machine = machine;
    oopp::Cluster cluster(opts);

    std::printf("oopp_noded: machine %u of %zu serving on port %u\n",
                machine, cluster.size(),
                opts.mesh_endpoints[machine].port);
    std::fflush(stdout);

    cluster.node(machine).wait_for_shutdown_request();
    std::printf("oopp_noded: machine %u shutting down\n", machine);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "oopp_noded: fatal: %s\n", e.what());
    return 1;
  }
}
