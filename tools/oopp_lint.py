#!/usr/bin/env python3
"""OOPP framework lint — rules the C++ compiler cannot enforce.

Rules
-----
serialize-coverage      Every ``oopp_serialize(Ar&, T&)`` overload must
                        mention every data member of the struct T it
                        serializes (a member that never appears in the
                        body is silently dropped on the wire).  Checked
                        for structs whose serialize function lives in the
                        same file — the framework convention.
raw-thread-primitive    ``std::mutex`` / ``std::shared_mutex`` /
                        ``std::condition_variable`` / ``std::thread`` are
                        banned outside ``src/util/``: locking must go
                        through util::CheckedMutex (lock-order checking),
                        threads through ElasticPool or a named owner in
                        util/.
thread-detach           ``.detach()`` is banned everywhere: a detached
                        thread outlives shutdown and races static
                        destruction.
inbox-pop-dispatch      Blocking ``Inbox::pop()`` belongs to the node's
                        receiver loop (src/rpc/node.cpp) alone.  A pop()
                        on a dispatch/servant thread stalls the whole
                        machine's message delivery.
raw-message-header      Hand-assembled ``net::Message`` headers (naming
                        ``MessageHeader`` or assigning ``.header.<field>``)
                        are banned outside ``src/net/``: go through
                        ``net::make_request`` / ``net::make_response`` so
                        the checksum policy and the trace-id extension
                        cannot be forgotten at any call site.
future-bare-get         A bare ``.get()`` on a future inside the hot
                        paths (``src/core/``, ``src/kv/``, ``src/dsm/``,
                        ``src/coll/``) blocks forever if the peer dies.
                        Use ``get_for``/``get_until`` with a deadline, a
                        retrying CallPolicy, or ``get_expected()`` — or
                        annotate the site to document that an unbounded
                        wait is intended (e.g. behind a caller-supplied
                        policy).  ``src/core/future.hpp`` itself is
                        exempt: it is the implementation.
removed-alias           The pre-unification remote-call spellings
                        (``call_all`` / ``async_all`` / ``invoke_all`` /
                        ``invoke_all_indexed`` / ``.collect<M>`` /
                        ``rpc_error``) were deprecated in PR 2 and removed
                        in PR 4; any reappearance is rejected so the dead
                        API cannot grow back.  See the migration table in
                        docs/TELEMETRY.md.
raw-batch-header        Batch-frame framing (``kBatchMagic`` / the 0xB5
                        magic byte / ``kBatchHeaderSize`` /
                        ``encode_batch_header`` / ``decode_batch_header``)
                        belongs to net::wire alone.  A hand-rolled batch
                        header outside ``src/net/`` silently diverges from
                        the one codec the FrameReader understands.
async-then-immediate-get
                        ``async_*(...)`` / ``.async<&M>(...)`` followed by
                        ``.get()`` in the same statement is a blocking
                        call with extra steps: nothing overlaps, but the
                        reply path still pays the future machinery.  Use
                        ``call<&M>`` — or hold the future and do work
                        before collecting it.  Annotate sites where the
                        async spelling is load-bearing (e.g. fan-out
                        helpers collecting a vector of futures).
lock-across-future-get  A ``std::lock_guard``/``unique_lock``/
                        ``scoped_lock``/``shared_lock`` still in scope
                        when ``.get()``/``.get_for()``/``.get_until()``/
                        ``.get_expected()`` is called holds a CheckedMutex
                        across a remote round trip — the static twin of
                        the runtime ``on_blocking_call`` check, catching
                        paths a test run never exercises.  An explicit
                        ``x.unlock()`` before the wait ends the guarded
                        region.
condvar-wait-no-predicate
                        ``CondVar::wait(lock)`` without a predicate (and
                        ``wait_for``/``wait_until`` without one) returns
                        on spurious wakeups with the condition unchecked.
                        Pass the predicate overload, or annotate loops
                        that deliberately re-check state each iteration.
dispatch-thread-blocking
                        Blocking collectives (every ``gather*``/``barrier*``
                        spelling) inside a servant-class method park one
                        dispatch thread per participant simultaneously — a
                        full worker pool of these deadlocks the machine.
                        Point-to-point ``call<&M>`` stays legal (the
                        elastic pool is sized for linear chains).  Servant
                        classes are those with a ``class_def<T>``
                        specialization anywhere in the linted tree.
deprecated-transport-setter
                        The per-fabric transport setters
                        (``set_batching(...)`` / ``batching()``) were
                        deprecated in PR 7 in favour of the unified
                        ``net::FabricOptions`` carried by
                        ``Cluster::Options::transport`` (runtime changes go
                        through ``Fabric::reconfigure``).  The forwarders
                        stay for one release for out-of-tree callers, but
                        in-tree code may not use them — see the migration
                        table in README.md.  ``src/net/`` is exempt: the
                        forwarders are defined there.
deprecated-persist-api  The raw registry surface — ``NameService::put`` /
                        ``get`` / ``erase`` and hand-built
                        ``PersistRecord``s — was deprecated with the typed
                        durability facade (``oopp::Uri`` +
                        ``Cluster::persist/activate/lookup/forget``).  The
                        ``[[deprecated]]`` forwarders stay one release for
                        out-of-tree callers, but in-tree code goes through
                        the facade — see the migration table in README.md.
                        ``src/core/`` is exempt: the forwarders and the
                        record type are defined (and mediated) there.

Usage
-----
  oopp_lint.py PATH...          lint the tree; exit 1 on any violation
  oopp_lint.py --self-test DIR  run against seeded fixtures; every
                                expected violation is marked in-line with
                                ``LINT-EXPECT: <rule>`` and must be
                                reported (and nothing else); exit 1 on
                                mismatch
  oopp_lint.py --list-rules     print every rule id + one-line summary

Suppression: put ``// oopp-lint: allow(<rule>)`` on the offending line or
the line directly above it.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

CPP_SUFFIXES = {".cpp", ".hpp", ".cc", ".hh", ".cxx", ".h"}

# Files allowed to use raw thread primitives (the checked wrappers and the
# thread owners live here).
RAW_PRIMITIVE_ALLOWED = ("src/util/",)

# The one place a blocking Inbox::pop() is legitimate.
INBOX_POP_ALLOWED = ("src/rpc/node.cpp",)

# Message headers are assembled by make_request/make_response here only.
MESSAGE_HEADER_ALLOWED = ("src/net/",)

# Batch-frame framing (magic, header layout, codec) lives in net::wire only.
BATCH_HEADER_ALLOWED = ("src/net/",)

# The deprecated transport setters are defined (and self-referenced) here;
# everywhere else must use net::FabricOptions / Fabric::reconfigure.
TRANSPORT_SETTER_ALLOWED = ("src/net/",)

# The deprecated registry surface (NameService::put/get/erase,
# hand-built PersistRecords) is defined and mediated here; everywhere else
# goes through the Uri-typed Cluster facade.
PERSIST_API_ALLOWED = ("src/core/",)

# Hot paths where an unbounded Future::get() is a hang waiting to happen.
# future.hpp is the implementation of get() itself and stays exempt.
FUTURE_GET_SCOPED = ("src/core/", "src/kv/", "src/dsm/", "src/coll/")
FUTURE_GET_EXEMPT = ("src/core/future.hpp",)

VIOLATION_FMT = "{file}:{line}: [{rule}] {msg}"

# Rule id -> one-line summary, in the order the docstring documents them.
# `--list-rules` prints this table; keep it in sync with the docstring.
RULES = {
    "serialize-coverage":
        "oopp_serialize must mention every data member of its struct",
    "raw-thread-primitive":
        "std::mutex/condition_variable/thread banned outside src/util/",
    "thread-detach":
        "thread detach() banned everywhere",
    "inbox-pop-dispatch":
        "blocking Inbox::pop() only in the node receiver loop",
    "raw-message-header":
        "hand-built net::Message headers banned outside src/net/",
    "future-bare-get":
        "bare Future::get() in hot paths must be bounded or annotated",
    "removed-alias":
        "retired pre-unification call spellings may not reappear",
    "raw-batch-header":
        "batch-frame framing (0xB5 codec) belongs to net::wire alone",
    "async-then-immediate-get":
        "async call .get()-ed in the same statement overlaps nothing",
    "lock-across-future-get":
        "lock guard in scope across a Future get/get_for/get_until",
    "condvar-wait-no-predicate":
        "CondVar wait without a predicate misses spurious wakeups",
    "dispatch-thread-blocking":
        "gather*/barrier* collectives inside a servant method",
    "deprecated-transport-setter":
        "set_batching()/batching() deprecated — use net::FabricOptions",
    "deprecated-persist-api":
        "NameService::put/get/erase + bare PersistRecord — use the facade",
}


class Violation:
    def __init__(self, file: Path, line: int, rule: str, msg: str):
        self.file = file
        self.line = line
        self.rule = rule
        self.msg = msg

    def __str__(self) -> str:
        return VIOLATION_FMT.format(
            file=self.file, line=self.line, rule=self.rule, msg=self.msg
        )


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving line numbers
    and byte offsets (replaced with spaces)."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c == "'" and i > 0 and (text[i - 1].isalnum() or text[i - 1] == "_"):
            out.append(c)  # digit separator (10'000), not a char literal
            i += 1
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(quote + " " * (j - i - 2) + (quote if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def suppressed(raw_lines: list[str], line: int, rule: str) -> bool:
    """A violation is suppressed by `oopp-lint: allow(<rule>)` on the
    offending line or the line directly above it."""
    needle = f"oopp-lint: allow({rule})"
    for ln in (line, line - 1):
        if 1 <= ln <= len(raw_lines) and needle in raw_lines[ln - 1]:
            return True
    return False


# --------------------------------------------------------------------------
# serialize-coverage
# --------------------------------------------------------------------------

STRUCT_RE = re.compile(r"\bstruct\s+(\w+)\s*(?::[^({]*?)?\{")
SERIALIZE_RE = re.compile(
    r"\boopp_serialize\s*\(\s*[\w:]+\s*&\s*\w+\s*,\s*(?:[\w:]+::)?(\w+)\s*&\s*(\w+)\s*\)"
)
MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?"
    r"(?!using\b|typedef\b|static\b|friend\b|template\b|return\b|struct\b|class\b|enum\b|public\b|private\b|protected\b|if\b|for\b|while\b|else\b|case\b)"
    r"[\w:<>,\s.*&]+?[\s&*>]"
    r"(\w+)\s*(?:=[^;]*|\{[^;{}]*\})?;\s*$"
)


def find_matching_brace(text: str, open_idx: int) -> int:
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    return len(text) - 1


def find_matching_paren(text: str, open_idx: int) -> int:
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i
    return -1


def struct_members(body: str) -> list[tuple[str, int]]:
    """Data members of a struct body (heuristic), with line offsets
    relative to the body start.  Only top-level declarations count."""
    # Blank out nested braces (methods, nested types, initializers) so only
    # top-level `type name;` declarations survive.
    flat = []
    depth = 0
    for ch in body:
        if ch == "{":
            depth += 1
            flat.append(" ")
        elif ch == "}":
            depth -= 1
            flat.append(" ")
        elif depth > 0 and ch != "\n":
            flat.append(" ")
        else:
            flat.append(ch)
    members = []
    for i, line in enumerate("".join(flat).split("\n")):
        if "(" in line or ")" in line:
            continue  # function declarations / pointers-to-member
        m = MEMBER_RE.match(line)
        if m:
            members.append((m.group(1), i))
    return members


def check_serialize_coverage(path: Path, text: str, raw_lines: list[str]):
    violations = []
    structs = {}
    for m in STRUCT_RE.finditer(text):
        name = m.group(1)
        open_idx = m.end() - 1
        close_idx = find_matching_brace(text, open_idx)
        structs[name] = (open_idx, close_idx)

    for sm in SERIALIZE_RE.finditer(text):
        struct_name = sm.group(1)
        if struct_name not in structs:
            continue  # serialize for a type defined elsewhere
        open_idx, close_idx = structs[struct_name]
        body = text[open_idx + 1 : close_idx]
        body_line = line_of(text, open_idx)

        # The serialize function body: from the match to its closing brace.
        fn_open = text.find("{", sm.end())
        if fn_open < 0:
            continue
        fn_body = text[fn_open : find_matching_brace(text, fn_open) + 1]

        for member, rel_line in struct_members(body):
            if not re.search(rf"\b{re.escape(member)}\b", fn_body):
                line = body_line + rel_line
                if suppressed(raw_lines, line, "serialize-coverage"):
                    continue
                violations.append(
                    Violation(
                        path,
                        line,
                        "serialize-coverage",
                        f"member '{member}' of struct '{struct_name}' is "
                        f"never mentioned by its oopp_serialize — it will "
                        f"be dropped on the wire",
                    )
                )
    return violations


# --------------------------------------------------------------------------
# raw-thread-primitive / thread-detach / inbox-pop-dispatch
# --------------------------------------------------------------------------

RAW_PRIMITIVE_RE = re.compile(
    r"\bstd\s*::\s*(mutex|recursive_mutex|shared_mutex|timed_mutex|"
    r"condition_variable|condition_variable_any|thread|jthread)\b"
)
DETACH_RE = re.compile(r"[.\->]\s*detach\s*\(\s*\)")
INBOX_POP_RE = re.compile(r"\b(\w*[Ii]nbox\w*(?:\(\s*\))?)\s*(?:\.|->)\s*pop\s*\(")
# Naming the header type, or writing through `.header.<field> =` (a lone
# `=` — `==` comparisons are reads and stay legal).
MESSAGE_HEADER_RE = re.compile(
    r"\bMessageHeader\b|[.\->]\s*header\s*\.\s*\w+\s*=(?!=)"
)
# `.get()` whose receiver is a plain identifier (a future variable) or a
# call result (`async_ping().get()`).  Subscripted smart-pointer accesses
# like `nodes_[i].get()` have `]` before the dot and do not match.
FUTURE_GET_RE = re.compile(r"[\w)]\s*(?:\.|->)\s*get\s*\(\s*\)")
# The retired pre-unification spellings.  `collect` is only flagged in
# member-call syntax (`.collect<` / `->collect<`) so the English word in
# identifiers like collect_partial_impl stays legal.
REMOVED_ALIAS_RE = re.compile(
    r"\b(call_all|async_all|invoke_all_indexed|invoke_all|rpc_error)\b"
    r"|(?:\.|->)\s*(?:template\s+)?(collect)\s*<"
)
# Batch-frame framing tokens: the magic byte and the codec entry points.
BATCH_HEADER_RE = re.compile(
    r"\b(kBatchMagic|kBatchVersion|kBatchHeaderSize|"
    r"encode_batch_header|decode_batch_header)\b"
    r"|\b0[xX][bB]5\b"
)
# The deprecated per-fabric transport setters: a set_batching(...) call, or
# a zero-argument batching() member read.  `options().batch` (the
# replacement) does not match.
TRANSPORT_SETTER_RE = re.compile(
    r"\bset_batching\s*\(|(?:\.|->)\s*batching\s*\(\s*\)"
)
# The deprecated registry surface: the old NameService method names
# (qualified, as member-pointer call targets) and any mention of the raw
# record type.  The replacements (bind/resolve/unbind and the Cluster
# facade) do not match.
DEPRECATED_PERSIST_RE = re.compile(
    r"\bNameService\s*::\s*(put|get|erase)\b|\b(PersistRecord)\b"
)


def check_token_rules(path: Path, text: str, raw_lines: list[str], rel: str):
    violations = []

    if not any(rel.startswith(p) or f"/{p}" in rel for p in RAW_PRIMITIVE_ALLOWED):
        for m in RAW_PRIMITIVE_RE.finditer(text):
            line = line_of(text, m.start())
            if suppressed(raw_lines, line, "raw-thread-primitive"):
                continue
            violations.append(
                Violation(
                    path,
                    line,
                    "raw-thread-primitive",
                    f"std::{m.group(1)} outside src/util/ — use "
                    f"util::CheckedMutex / util::CondVar (lock-order "
                    f"checked) or a thread owner in util/",
                )
            )

    for m in DETACH_RE.finditer(text):
        line = line_of(text, m.start())
        if suppressed(raw_lines, line, "thread-detach"):
            continue
        violations.append(
            Violation(
                path,
                line,
                "thread-detach",
                "detach() — a detached thread outlives shutdown and races "
                "static destruction; join it from an owner instead",
            )
        )

    if not any(rel.startswith(p) or f"/{p}" in rel
               for p in MESSAGE_HEADER_ALLOWED):
        for m in MESSAGE_HEADER_RE.finditer(text):
            line = line_of(text, m.start())
            if suppressed(raw_lines, line, "raw-message-header"):
                continue
            violations.append(
                Violation(
                    path,
                    line,
                    "raw-message-header",
                    "hand-built net::Message header outside src/net/ — "
                    "use net::make_request / net::make_response so the "
                    "checksum and trace extension are always stamped",
                )
            )

    in_hot_path = any(rel.startswith(p) or f"/{p}" in rel
                      for p in FUTURE_GET_SCOPED)
    if in_hot_path and not any(rel.endswith(p) for p in FUTURE_GET_EXEMPT):
        for m in FUTURE_GET_RE.finditer(text):
            line = line_of(text, m.start())
            if suppressed(raw_lines, line, "future-bare-get"):
                continue
            violations.append(
                Violation(
                    path,
                    line,
                    "future-bare-get",
                    "bare Future::get() in a hot path blocks forever if "
                    "the peer dies — bound it (get_for/get_until), attach "
                    "a retrying CallPolicy, or use get_expected(); "
                    "annotate if the unbounded wait is intentional",
                )
            )

    for m in REMOVED_ALIAS_RE.finditer(text):
        line = line_of(text, m.start())
        if suppressed(raw_lines, line, "removed-alias"):
            continue
        name = m.group(1) or m.group(2)
        violations.append(
            Violation(
                path,
                line,
                "removed-alias",
                f"'{name}' is a pre-unification spelling removed in PR 4 — "
                f"use the unified call/async/gather surface (migration "
                f"table in docs/TELEMETRY.md)",
            )
        )

    if not any(rel.startswith(p) or f"/{p}" in rel
               for p in BATCH_HEADER_ALLOWED):
        for m in BATCH_HEADER_RE.finditer(text):
            line = line_of(text, m.start())
            if suppressed(raw_lines, line, "raw-batch-header"):
                continue
            violations.append(
                Violation(
                    path,
                    line,
                    "raw-batch-header",
                    "batch-frame framing outside src/net/ — only "
                    "net::wire::send_batch / FrameReader may emit or parse "
                    "the 0xB5 batch header, so the codec cannot fork",
                )
            )

    if not any(rel.startswith(p) or f"/{p}" in rel
               for p in TRANSPORT_SETTER_ALLOWED):
        for m in TRANSPORT_SETTER_RE.finditer(text):
            line = line_of(text, m.start())
            if suppressed(raw_lines, line, "deprecated-transport-setter"):
                continue
            violations.append(
                Violation(
                    path,
                    line,
                    "deprecated-transport-setter",
                    "deprecated transport setter — configure batching via "
                    "net::FabricOptions (Cluster::Options::transport / the "
                    "fabric constructor) and change it at runtime with "
                    "Fabric::reconfigure(); see the migration table in "
                    "README.md",
                )
            )

    if not any(rel.startswith(p) or f"/{p}" in rel
               for p in PERSIST_API_ALLOWED):
        for m in DEPRECATED_PERSIST_RE.finditer(text):
            line = line_of(text, m.start())
            if suppressed(raw_lines, line, "deprecated-persist-api"):
                continue
            what = (f"NameService::{m.group(1)}" if m.group(1)
                    else "bare PersistRecord")
            violations.append(
                Violation(
                    path,
                    line,
                    "deprecated-persist-api",
                    f"{what} — deprecated raw registry surface; go through "
                    f"the typed durability facade (oopp::Uri + "
                    f"Cluster::persist/activate/lookup/forget, or "
                    f"NameService::bind/resolve/unbind); see the migration "
                    f"table in README.md",
                )
            )

    if not any(rel.endswith(p) or rel == p for p in INBOX_POP_ALLOWED):
        for m in INBOX_POP_RE.finditer(text):
            line = line_of(text, m.start())
            if suppressed(raw_lines, line, "inbox-pop-dispatch"):
                continue
            violations.append(
                Violation(
                    path,
                    line,
                    "inbox-pop-dispatch",
                    f"blocking pop() on '{m.group(1)}' outside the node "
                    f"receiver loop — this stalls message delivery for "
                    f"the whole machine",
                )
            )
    return violations


# --------------------------------------------------------------------------
# async-then-immediate-get
# --------------------------------------------------------------------------

# An `async…` member or free call: `.async<&M>(…)`, `async_ping(…)`, …
# The template argument list never contains parentheses in this codebase
# (member pointers like &T::m), which keeps the scan cheap.
ASYNC_CALL_RE = re.compile(r"\basync\w*\s*(?:<[^;{}()]*>)?\s*\(")


def check_async_immediate_get(path: Path, text: str, raw_lines: list[str]):
    """Flag `async_*(...)` whose result is `.get()`-ed in the same
    statement — a blocking call spelled asynchronously."""
    violations = []
    for m in ASYNC_CALL_RE.finditer(text):
        close_idx = find_matching_paren(text, m.end() - 1)
        if close_idx < 0:
            continue
        j = close_idx + 1
        for token in (".", "get", "("):
            while j < len(text) and text[j] in " \t\n":
                j += 1
            if not text.startswith(token, j):
                j = -1
                break
            j += len(token)
        if j < 0:
            continue
        line = line_of(text, m.start())
        if suppressed(raw_lines, line, "async-then-immediate-get"):
            continue
        violations.append(
            Violation(
                path,
                line,
                "async-then-immediate-get",
                "async call immediately .get()-ed in the same statement "
                "— nothing overlaps; use call<&M> for a blocking call, "
                "or hold the future and do work before collecting it",
            )
        )
    return violations


# --------------------------------------------------------------------------
# lock-across-future-get
# --------------------------------------------------------------------------

# A guard object declaration: `std::lock_guard<M> g(mu);`, `std::unique_lock
# lock{mu_};`, `std::scoped_lock both(a, b);`, `std::shared_lock rd(mu_);`.
LOCK_GUARD_RE = re.compile(
    r"\bstd\s*::\s*(?:lock_guard|unique_lock|scoped_lock|shared_lock)\s*"
    r"(?:<[^;>]*>)?\s+(\w+)\s*[({]"
)
# The blocking Future collection points.  get_expected() blocks just as
# long as get(); the bounded forms still hold the lock for the full bound.
# CondVar waits are NOT in this set: `cv.wait(lk)` releases the lock.
FUTURE_WAIT_RE = re.compile(
    r"[\w)]\s*(?:\.|->)\s*(get|get_for|get_until|get_expected)\s*\("
)


def guard_scope_end(text: str, decl_end: int) -> int:
    """Offset where the block enclosing a declaration at decl_end closes."""
    depth = 0
    for i in range(decl_end, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth < 0:
                return i
    return len(text)


def check_lock_across_get(path: Path, text: str, raw_lines: list[str]):
    violations = []
    reported = set()
    for gm in LOCK_GUARD_RE.finditer(text):
        var = gm.group(1)
        # The guarded region: from the declaration to the end of its
        # enclosing block, cut short by an explicit `var.unlock()`.
        end = guard_scope_end(text, gm.end())
        um = re.search(rf"\b{re.escape(var)}\s*\.\s*unlock\s*\(",
                       text[gm.end():end])
        if um:
            end = gm.end() + um.start()
        for fm in FUTURE_WAIT_RE.finditer(text, gm.end(), end):
            # Receivers reached through `->` (`it->second.get()`) are
            # iterator / smart-pointer internals, never futures (futures
            # are moved-from values held by name in this codebase).
            recv_start = fm.start()
            while recv_start > 0 and (text[recv_start - 1].isalnum()
                                      or text[recv_start - 1] == "_"):
                recv_start -= 1
            if text[max(0, recv_start - 2):recv_start].endswith("->"):
                continue
            line = line_of(text, fm.start())
            if line in reported:
                continue
            if suppressed(raw_lines, line, "lock-across-future-get"):
                continue
            reported.add(line)
            violations.append(
                Violation(
                    path,
                    line,
                    "lock-across-future-get",
                    f"Future::{fm.group(1)}() while guard '{var}' "
                    f"(declared line {line_of(text, gm.start())}) is still "
                    f"in scope — a remote round trip under a lock; unlock "
                    f"first or collect the future outside the guarded "
                    f"region",
                )
            )
    return violations


# --------------------------------------------------------------------------
# condvar-wait-no-predicate
# --------------------------------------------------------------------------

# A CondVar member/variable declaration anywhere in the linted tree; the
# names feed the per-file wait-site scan (declaration and use may live in
# different files — e.g. node.hpp declares, node.cpp waits).
CONDVAR_DECL_RE = re.compile(r"\b(?:util\s*::\s*)?CondVar\s+(\w+)\s*[;{]")
CONDVAR_WAIT_RE = re.compile(
    r"\b(\w+)\s*(?:\.|->)\s*(wait|wait_for|wait_until)\s*\("
)


def top_level_commas(text: str, open_idx: int) -> int:
    """Commas at depth 1 of the paren at open_idx (i.e. argument
    separators), ignoring nested (), {}, []."""
    depth = 0
    count = 0
    for i in range(open_idx, len(text)):
        c = text[i]
        if c in "({[":
            depth += 1
        elif c in ")}]":
            depth -= 1
            if depth == 0:
                return count
        elif c == "," and depth == 1:
            count += 1
    return count


def check_condvar_wait(path: Path, text: str, raw_lines: list[str],
                       condvars: set[str]):
    violations = []
    for m in CONDVAR_WAIT_RE.finditer(text):
        if m.group(1) not in condvars:
            continue
        kind = m.group(2)
        commas = top_level_commas(text, m.end() - 1)
        # wait(lock, pred) has 1 comma; wait_for/until(lock, t, pred) have 2.
        need = 1 if kind == "wait" else 2
        if commas >= need:
            continue
        line = line_of(text, m.start())
        if suppressed(raw_lines, line, "condvar-wait-no-predicate"):
            continue
        violations.append(
            Violation(
                path,
                line,
                "condvar-wait-no-predicate",
                f"{m.group(1)}.{kind}() without a predicate returns on "
                f"spurious wakeups with the condition unchecked — pass the "
                f"predicate overload, or annotate a loop that re-checks "
                f"state every iteration",
            )
        )
    return violations


# --------------------------------------------------------------------------
# dispatch-thread-blocking
# --------------------------------------------------------------------------

# Servant classes: any T with a `class_def<T>` specialization in the tree.
CLASS_DEF_RE = re.compile(r"\bclass_def\s*<\s*(?:[\w]+\s*::\s*)*(\w+)\s*>")
# An out-of-line member definition: `ret Cls::method(...) ... {`.
OUT_OF_LINE_RE = re.compile(r"\b(\w+)\s*::\s*(~?\w+)\s*\(")
# An inline class/struct body: `class Cls ... {`.
CLASS_BODY_RE = re.compile(r"\b(?:class|struct)\s+(\w+)[^;{]*\{")
# Blocking collectives that must not run on a dispatch thread: every
# gather*/barrier* spelling, member or coll::-qualified.  Point-to-point
# call<&M> stays legal — the elastic pool is sized for linear chains, but
# a collective parks one dispatch thread per participant at once.
DISPATCH_BLOCKING_RE = re.compile(
    r"(?:(?:\.|->)\s*(?:template\s+)?|\bcoll\s*::\s*)"
    r"(gather\w*|barrier\w*)\s*[<(]"
)


def collect_context(files: list[Path]) -> dict:
    """Repo-wide pre-pass: servant class names and CondVar variable names.
    Both cross file boundaries (class_def<T> specializations live in
    headers; waits on a header-declared CondVar live in the .cpp)."""
    servants: set[str] = set()
    condvars: set[str] = set()
    for f in files:
        text = strip_comments_and_strings(
            f.read_text(encoding="utf-8", errors="replace"))
        for m in CLASS_DEF_RE.finditer(text):
            if len(m.group(1)) > 1:  # skip template params (class_def<T>)
                servants.add(m.group(1))
        for m in CONDVAR_DECL_RE.finditer(text):
            condvars.add(m.group(1))
    return {"servants": servants, "condvars": condvars}


def servant_regions(text: str, servants: set[str]) -> list[tuple[int, int]]:
    """Offset ranges of servant method bodies: out-of-line `Cls::m(){...}`
    definitions plus whole inline class bodies."""
    regions = []
    for m in OUT_OF_LINE_RE.finditer(text):
        if m.group(1) not in servants:
            continue
        close = find_matching_paren(text, text.find("(", m.end() - 1))
        if close < 0:
            continue
        # A definition's `{` follows the parameter list after only
        # qualifiers (const/noexcept/override/trailing return); a call
        # expression hits `;` or an operator first.
        tail = text[close + 1 : close + 120]
        bm = re.match(
            r"\s*(?:const|noexcept(?:\([^)]*\))?|override|final"
            r"|->\s*[\w:<>,&*\s]+)*\s*\{", tail)
        if not bm:
            continue
        open_idx = close + bm.end()
        regions.append((open_idx, find_matching_brace(text, open_idx - 1)))
    for m in CLASS_BODY_RE.finditer(text):
        if m.group(1) not in servants:
            continue
        open_idx = m.end() - 1
        regions.append((open_idx, find_matching_brace(text, open_idx)))
    return regions


def check_dispatch_blocking(path: Path, text: str, raw_lines: list[str],
                            servants: set[str]):
    violations = []
    regions = servant_regions(text, servants)
    if not regions:
        return violations
    reported = set()
    for m in DISPATCH_BLOCKING_RE.finditer(text):
        if not any(lo <= m.start() < hi for lo, hi in regions):
            continue
        line = line_of(text, m.start())
        if line in reported:
            continue
        if suppressed(raw_lines, line, "dispatch-thread-blocking"):
            continue
        reported.add(line)
        violations.append(
            Violation(
                path,
                line,
                "dispatch-thread-blocking",
                f"blocking collective '{m.group(1)}' inside a servant "
                f"method parks a dispatch thread per participant at once "
                f"— a full worker pool of these deadlocks the machine; "
                f"restructure as async + continuation, or annotate a site "
                f"the elastic pool is sized to absorb",
            )
        )
    return violations


# --------------------------------------------------------------------------
# driver
# --------------------------------------------------------------------------


def lint_file(path: Path, root: Path, ctx: dict | None = None
              ) -> list[Violation]:
    ctx = ctx or {"servants": set(), "condvars": set()}
    raw = path.read_text(encoding="utf-8", errors="replace")
    raw_lines = raw.split("\n")
    text = strip_comments_and_strings(raw)
    try:
        rel = str(path.resolve().relative_to(root.resolve()))
    except ValueError:
        rel = str(path)
    rel = rel.replace("\\", "/")
    violations = []
    violations += check_serialize_coverage(path, text, raw_lines)
    violations += check_token_rules(path, text, raw_lines, rel)
    violations += check_async_immediate_get(path, text, raw_lines)
    violations += check_lock_across_get(path, text, raw_lines)
    violations += check_condvar_wait(path, text, raw_lines, ctx["condvars"])
    violations += check_dispatch_blocking(path, text, raw_lines,
                                          ctx["servants"])
    return violations


def collect_files(paths: list[Path]) -> list[Path]:
    files = []
    for p in paths:
        if p.is_dir():
            files += [
                f for f in sorted(p.rglob("*")) if f.suffix in CPP_SUFFIXES
            ]
        elif p.is_file():
            if p.suffix in CPP_SUFFIXES:
                files.append(p)
        else:
            # A typo'd path in CI must fail loudly, not lint zero files.
            raise SystemExit(f"oopp_lint: error: no such file or directory: {p}")
    return files


def self_test(fixtures: Path, root: Path) -> int:
    """Every `LINT-EXPECT: rule` comment must produce exactly one matching
    violation on that line; any other violation is a failure."""
    ok = True
    files = collect_files([fixtures])
    # Fixtures are self-contained: the pre-pass context (servant classes,
    # CondVar names) is collected from the fixture set itself.
    ctx = collect_context(files)
    for f in files:
        raw_lines = f.read_text(encoding="utf-8").split("\n")
        expected = set()
        for i, line in enumerate(raw_lines, start=1):
            for m in re.finditer(r"LINT-EXPECT:\s*([\w-]+)", line):
                expected.add((i, m.group(1)))
        got = {(v.line, v.rule) for v in lint_file(f, root, ctx)}
        for miss in sorted(expected - got):
            print(f"SELF-TEST FAIL {f}:{miss[0]}: expected [{miss[1]}] not reported")
            ok = False
        for extra in sorted(got - expected):
            print(f"SELF-TEST FAIL {f}:{extra[0]}: unexpected [{extra[1]}]")
            ok = False
    print("oopp_lint self-test:", "PASS" if ok else "FAIL")
    return 0 if ok else 1


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("paths", nargs="*", type=Path)
    ap.add_argument("--root", type=Path, default=Path.cwd(),
                    help="repo root for allow-list matching")
    ap.add_argument("--self-test", action="store_true",
                    help="treat paths as fixture dirs with LINT-EXPECT marks")
    ap.add_argument("--list-rules", action="store_true",
                    help="print every rule id and a one-line summary")
    args = ap.parse_args()

    if args.list_rules:
        width = max(len(r) for r in RULES)
        for rule, summary in RULES.items():
            print(f"{rule:<{width}}  {summary}")
        return 0

    if not args.paths:
        ap.error("paths required (or --list-rules)")

    if args.self_test:
        rc = 0
        for p in args.paths:
            rc |= self_test(p, args.root)
        return rc

    violations = []
    files = collect_files(args.paths)
    ctx = collect_context(files)
    for f in files:
        violations += lint_file(f, args.root, ctx)
    for v in violations:
        print(v)
    print(f"oopp_lint: {len(files)} files, {len(violations)} violation(s)")
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
