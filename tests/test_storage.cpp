// Storage substrate tests: Page/ArrayPage value semantics, PageDevice
// file-backed I/O (local and remote), process inheritance through
// ArrayPageDevice, move-data vs move-computation equivalence, and the §5
// adopt-an-existing-process constructor.
#include <gtest/gtest.h>

#include <filesystem>
#include <numeric>

#include "core/oopp.hpp"
#include "storage/array_page.hpp"
#include "storage/array_page_device.hpp"
#include "storage/page.hpp"
#include "storage/page_device.hpp"
#include "util/clock.hpp"
#include "util/prng.hpp"

using oopp::Cluster;
using oopp::remote_ptr;
namespace storage = oopp::storage;
namespace fs = std::filesystem;

namespace {

class TempDir {
 public:
  TempDir() {
    dir_ = fs::temp_directory_path() /
           ("oopp-test-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter_++));
    fs::create_directories(dir_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (dir_ / name).string();
  }

 private:
  static inline int counter_ = 0;
  fs::path dir_;
};

storage::Page pattern_page(std::size_t n, std::uint8_t seed) {
  storage::Page p(n);
  for (std::size_t i = 0; i < n; ++i)
    p[i] = static_cast<std::uint8_t>((i * 31 + seed) & 0xff);
  return p;
}

TEST(Page, ValueSemanticsAndBounds) {
  storage::Page p(16);
  EXPECT_EQ(p.size(), 16u);
  p[3] = 42;
  storage::Page q = p;
  EXPECT_EQ(q, p);
  q[3] = 7;
  EXPECT_NE(q, p);
  EXPECT_THROW(p[16], oopp::check_error);
}

TEST(Page, FromRawBuffer) {
  const unsigned char raw[] = {1, 2, 3, 4};
  storage::Page p(4, raw);
  EXPECT_EQ(p[0], 1);
  EXPECT_EQ(p[3], 4);
}

TEST(PageDeviceLocal, WriteReadRoundTrip) {
  TempDir tmp;
  storage::PageDevice dev(tmp.file("pages.bin"), 10, 1024);
  const auto page = pattern_page(1024, 5);
  dev.write(page, 7);
  EXPECT_EQ(dev.read(7), page);
  EXPECT_EQ(dev.operations(), 2u);
}

TEST(PageDeviceLocal, FileHasExpectedSize) {
  TempDir tmp;
  const auto path = tmp.file("sized.bin");
  storage::PageDevice dev(path, 10, 1024);
  EXPECT_EQ(fs::file_size(path), 10u * 1024u);
}

TEST(PageDeviceLocal, DistinctAddressesAreIndependent) {
  TempDir tmp;
  storage::PageDevice dev(tmp.file("pages.bin"), 4, 256);
  for (int i = 0; i < 4; ++i)
    dev.write(pattern_page(256, static_cast<std::uint8_t>(i)), i);
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(dev.read(i), pattern_page(256, static_cast<std::uint8_t>(i)));
}

TEST(PageDeviceLocal, RejectsBadIndexAndSize) {
  TempDir tmp;
  storage::PageDevice dev(tmp.file("pages.bin"), 2, 64);
  EXPECT_THROW(dev.read(-1), oopp::check_error);
  EXPECT_THROW(dev.read(2), oopp::check_error);
  EXPECT_THROW(dev.write(pattern_page(32, 0), 0), oopp::check_error);
  EXPECT_THROW(dev.write(pattern_page(64, 0), 5), oopp::check_error);
}

TEST(PageDeviceLocal, UnwrittenPagesReadAsZero) {
  TempDir tmp;
  storage::PageDevice dev(tmp.file("pages.bin"), 3, 128);
  const auto page = dev.read(1);
  for (std::size_t i = 0; i < page.size(); ++i) EXPECT_EQ(page[i], 0);
}

TEST(PageDeviceLocal, EnsureCapacityGrowsWithoutLosingData) {
  // Redistribution provisions target slot banks on live devices; growing
  // must preserve every existing page and make the new slots usable.
  TempDir tmp;
  const auto path = tmp.file("grow.bin");
  storage::PageDevice dev(path, 2, 64);
  dev.write(pattern_page(64, 11), 0);
  dev.write(pattern_page(64, 22), 1);
  EXPECT_THROW(dev.read(2), oopp::check_error);

  dev.ensure_capacity(5);
  EXPECT_EQ(dev.number_of_pages(), 5);
  EXPECT_EQ(fs::file_size(path), 5u * 64u);
  EXPECT_EQ(dev.read(0), pattern_page(64, 11));
  EXPECT_EQ(dev.read(1), pattern_page(64, 22));
  for (int i = 2; i < 5; ++i) {
    const auto zero = dev.read(i);
    for (std::size_t b = 0; b < zero.size(); ++b) EXPECT_EQ(zero[b], 0);
  }
  dev.write(pattern_page(64, 33), 4);
  EXPECT_EQ(dev.read(4), pattern_page(64, 33));

  // Grow-only: a smaller request is a no-op, never a truncation.
  dev.ensure_capacity(1);
  EXPECT_EQ(dev.number_of_pages(), 5);
  EXPECT_EQ(dev.read(1), pattern_page(64, 22));
}

// The paper's §2 program, verbatim in library form:
//   PageDevice* PageStore = new(machine 1) PageDevice("pagefile", 10, 1024);
//   Page* page = GenerateDataPage();
//   PageStore->write(page, 17);   (17 → 7 here: the paper's 17 exceeds its
//                                  own NumberOfPages = 10)
TEST(PageDeviceRemote, PaperSection2Flow) {
  TempDir tmp;
  Cluster cluster(2);
  auto page_store = cluster.make_remote<storage::PageDevice>(
      1, tmp.file("pagefile"), 10, 1024);
  const auto page = pattern_page(1024, 17);
  page_store.call<&storage::PageDevice::write>(page, 7);
  EXPECT_EQ(page_store.call<&storage::PageDevice::read>(7), page);
  // delete PageStore → the remote process terminates.
  page_store.destroy();
  EXPECT_THROW(page_store.call<&storage::PageDevice::read>(7),
               oopp::rpc::ObjectNotFound);
}

TEST(PageDeviceRemote, ErrorsCrossTheWire) {
  TempDir tmp;
  Cluster cluster(2);
  auto dev = cluster.make_remote<storage::PageDevice>(
      1, tmp.file("pagefile"), 4, 64);
  EXPECT_THROW(dev.call<&storage::PageDevice::read>(99),
               oopp::rpc::RemoteError);
}

TEST(ArrayPage, StructuredAccessAndSum) {
  storage::ArrayPage p(2, 3, 4);
  EXPECT_EQ(p.elements(), 24);
  EXPECT_EQ(p.size(), 24u * sizeof(double));
  double v = 0.0;
  for (oopp::index_t i1 = 0; i1 < 2; ++i1)
    for (oopp::index_t i2 = 0; i2 < 3; ++i2)
      for (oopp::index_t i3 = 0; i3 < 4; ++i3) p.set(i1, i2, i3, v += 1.0);
  EXPECT_DOUBLE_EQ(p.sum(), 24.0 * 25.0 / 2.0);
  EXPECT_DOUBLE_EQ(p.at(1, 2, 3), 24.0);
  EXPECT_THROW((void)p.at(2, 0, 0), oopp::check_error);
}

TEST(ArrayPage, FromBuffer) {
  std::vector<double> vals(8);
  std::iota(vals.begin(), vals.end(), 1.0);
  storage::ArrayPage p(2, 2, 2, vals.data());
  EXPECT_DOUBLE_EQ(p.sum(), 36.0);
  EXPECT_DOUBLE_EQ(p.at(1, 1, 1), 8.0);
}

// §3: "the sum can be computed by first copying the entire page to the
// local machine" vs "computed on the remote machine and only the result
// copied" — both must give the same answer.
TEST(ArrayPageDeviceRemote, MoveDataVsMoveComputationAgree) {
  TempDir tmp;
  Cluster cluster(2);
  auto blocks = cluster.make_remote<storage::ArrayPageDevice>(
      1, tmp.file("array_blocks"), 8, 4, 4, 4);

  storage::ArrayPage page(4, 4, 4);
  oopp::Xoshiro256 rng(99);
  for (oopp::index_t i = 0; i < page.elements(); ++i)
    page.values()[i] = rng.uniform(-1.0, 1.0);
  blocks.call<&storage::ArrayPageDevice::write_array>(page, 4);

  // Move the data to the computation.
  auto local =
      blocks.call<&storage::ArrayPageDevice::read_array>(4);
  const double local_sum = local.sum();
  // Move the computation to the data.
  const double remote_sum = blocks.call<&storage::ArrayPageDevice::sum>(4);
  EXPECT_DOUBLE_EQ(local_sum, remote_sum);
}

// §3: process inheritance — an ArrayPageDevice serves the PageDevice
// protocol, and a remote_ptr<ArrayPageDevice> converts to
// remote_ptr<PageDevice>.
TEST(ArrayPageDeviceRemote, ServesInheritedProtocol) {
  TempDir tmp;
  Cluster cluster(2);
  auto blocks = cluster.make_remote<storage::ArrayPageDevice>(
      1, tmp.file("blk"), 4, 2, 2, 2);

  remote_ptr<storage::PageDevice> base = blocks;  // derived → base
  EXPECT_EQ(base.call<&storage::PageDevice::page_size>(),
            static_cast<int>(8 * sizeof(double)));
  const auto raw = pattern_page(8 * sizeof(double), 3);
  base.call<&storage::PageDevice::write>(raw, 2);
  EXPECT_EQ(base.call<&storage::PageDevice::read>(2), raw);
}

TEST(ArrayPageDeviceRemote, SumRegion) {
  TempDir tmp;
  Cluster cluster(2);
  auto blocks = cluster.make_remote<storage::ArrayPageDevice>(
      1, tmp.file("blk"), 2, 4, 4, 4);
  storage::ArrayPage page(4, 4, 4);
  for (oopp::index_t i = 0; i < 64; ++i) page.values()[i] = 1.0;
  blocks.call<&storage::ArrayPageDevice::write_array>(page, 0);
  EXPECT_DOUBLE_EQ(blocks.call<&storage::ArrayPageDevice::sum_region>(
                       0, oopp::index_t{0}, oopp::index_t{4},
                       oopp::index_t{0}, oopp::index_t{4}, oopp::index_t{0},
                       oopp::index_t{4}),
                   64.0);
  EXPECT_DOUBLE_EQ(blocks.call<&storage::ArrayPageDevice::sum_region>(
                       0, oopp::index_t{1}, oopp::index_t{3},
                       oopp::index_t{1}, oopp::index_t{3}, oopp::index_t{0},
                       oopp::index_t{2}),
                   8.0);
}

// §5: new ArrayPageDevice(page_device) — a new process adopting an
// existing process's storage; both co-exist, then the original is deleted.
TEST(ArrayPageDeviceRemote, AdoptExistingDeviceProcess) {
  TempDir tmp;
  Cluster cluster(3);
  const int n = 4;
  auto plain = cluster.make_remote<storage::PageDevice>(
      1, tmp.file("adopt"), 6, static_cast<int>(n * n * n * sizeof(double)));

  // Write raw bytes of a known block through the old process.
  storage::ArrayPage block(n, n, n);
  for (oopp::index_t i = 0; i < block.elements(); ++i)
    block.values()[i] = double(i);
  plain.call<&storage::PageDevice::write>(block, 3);

  // New derived process on another machine adopting the same storage.
  auto derived = cluster.make_remote<storage::ArrayPageDevice>(
      2, plain, n, n, n);
  EXPECT_DOUBLE_EQ(derived.call<&storage::ArrayPageDevice::sum>(3),
                   block.sum());

  // The paper: "subsequently shut it down using delete page_device;"
  plain.destroy();
  EXPECT_DOUBLE_EQ(derived.call<&storage::ArrayPageDevice::sum>(3),
                   block.sum());
}

TEST(PageDevicePersistence, PassivateAndActivateKeepsData) {
  TempDir tmp;
  Cluster cluster(2);
  auto dev = cluster.make_remote<storage::PageDevice>(
      1, tmp.file("persist"), 4, 128);
  const auto page = pattern_page(128, 9);
  dev.call<&storage::PageDevice::write>(page, 2);

  cluster.passivate(dev, "oopp://devices/persist-test");
  EXPECT_THROW(dev.call<&storage::PageDevice::read>(2),
               oopp::rpc::ObjectNotFound);

  auto revived =
      cluster.lookup<storage::PageDevice>("oopp://devices/persist-test");
  EXPECT_EQ(revived.call<&storage::PageDevice::read>(2), page);
}

TEST(DeviceOptions, ServiceTimeSlowsOperations) {
  TempDir tmp;
  storage::PageDevice fast(tmp.file("fast"), 2, 64);
  storage::PageDevice slow(tmp.file("slow"), 2, 64,
                           storage::DeviceOptions{.service_us = 2000});
  const auto page = pattern_page(64, 1);
  oopp::Timer t;
  fast.write(page, 0);
  const double fast_ms = t.millis();
  t.reset();
  slow.write(page, 0);
  const double slow_ms = t.millis();
  EXPECT_GT(slow_ms, fast_ms);
  EXPECT_GE(slow_ms, 1.5);
}

}  // namespace
