// Edge cases across modules that the focused suites do not reach:
// endpoint-file parsing, ingress cost modeling, teardown with in-flight
// work, trace on failures, element types of remote_data, and counters.
#include <gtest/gtest.h>

#include <fstream>
#include <thread>

#include "core/oopp.hpp"
#include "kv/kv_store.hpp"
#include "net/tcp_mesh_fabric.hpp"

using namespace oopp;

namespace {

class Napper {
 public:
  Napper() = default;
  int nap(int ms) {
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    return ms;
  }
  void fail() { throw std::runtime_error("planned"); }
};

}  // namespace

template <>
struct oopp::rpc::class_def<Napper> {
  static std::string name() { return "misc.Napper"; }
  using ctors = ctor_list<ctor<>>;
  template <class B>
  static void bind(B& b) {
    b.template method<&Napper::nap>("nap");
    b.template method<&Napper::fail>("fail");
  }
};

namespace {

TEST(Endpoints, ParsesHostsPortsAndComments) {
  const std::string path =
      "/tmp/oopp-endpoints-" + std::to_string(::getpid());
  {
    std::ofstream out(path);
    out << "# machines of the test mesh\n"
        << "127.0.0.1 5001\n"
        << "\n"
        << "10.0.0.2 5002  # rack 2\n"
        << "hostname.example 65535\n";
  }
  auto eps = net::load_endpoints(path);
  ASSERT_EQ(eps.size(), 3u);
  EXPECT_EQ(eps[0].host, "127.0.0.1");
  EXPECT_EQ(eps[0].port, 5001);
  EXPECT_EQ(eps[1].host, "10.0.0.2");
  EXPECT_EQ(eps[1].port, 5002);
  EXPECT_EQ(eps[2].host, "hostname.example");
  EXPECT_EQ(eps[2].port, 65535);
  ::unlink(path.c_str());
}

TEST(Endpoints, RejectsMissingAndEmptyFiles) {
  EXPECT_THROW(net::load_endpoints("/no/such/file"), oopp::check_error);
  const std::string path =
      "/tmp/oopp-endpoints-empty-" + std::to_string(::getpid());
  {
    std::ofstream out(path);
    out << "# nothing but comments\n";
  }
  EXPECT_THROW(net::load_endpoints(path), oopp::check_error);
  ::unlink(path.c_str());
}

TEST(CostModel, IngressAndEgressTerms) {
  net::CostModel m{};
  m.egress_bytes_per_us = 100.0;
  m.egress_per_message_ns = 500;
  m.ingress_bytes_per_us = 50.0;
  EXPECT_EQ(m.egress_ns(0), 500);
  EXPECT_NEAR(double(m.egress_ns(100'000)), 500.0 + 1e6, 1.0);
  EXPECT_NEAR(double(m.ingress_ns(50'000)), 1e6, 1.0);
  EXPECT_EQ(net::CostModel::zero().egress_ns(1 << 20), 0);
  EXPECT_EQ(net::CostModel::zero().ingress_ns(1 << 20), 0);
}

TEST(Teardown, InFlightCallsFailTyped) {
  std::vector<Future<int>> futs;
  {
    Cluster cluster(2);
    auto n = cluster.make_remote<Napper>(1);
    for (int i = 0; i < 4; ++i) futs.push_back(n.async<&Napper::nap>(300));
    // Cluster dies with naps outstanding.
  }
  int aborted = 0, finished = 0;
  for (auto& f : futs) {
    try {
      (void)f.get();
      ++finished;  // a nap that completed before teardown
    } catch (const rpc::CallAborted&) {
      ++aborted;
    }
  }
  EXPECT_EQ(aborted + finished, 4);
  EXPECT_GT(aborted, 0);
}

TEST(Trace, RecordsFailuresWithStatus) {
  Cluster cluster(2);
  std::mutex mu;
  std::vector<net::CallStatus> statuses;
  cluster.node(1).set_trace([&](const rpc::CallTrace& t) {
    std::lock_guard lock(mu);
    statuses.push_back(t.status);
  });
  auto n = cluster.make_remote<Napper>(1);
  n.call<&Napper::nap>(0);
  try {
    n.call<&Napper::fail>();
  } catch (const rpc::RemoteError&) {
  }
  std::lock_guard lock(mu);
  ASSERT_EQ(statuses.size(), 2u);
  EXPECT_EQ(statuses[0], net::CallStatus::kOk);
  EXPECT_EQ(statuses[1], net::CallStatus::kRemoteException);
}

TEST(RemoteData, WorksForSeveralElementTypes) {
  Cluster cluster(2);
  auto ints = cluster.make_remote_array<int>(1, 8);
  ints[3] = -5;
  EXPECT_EQ(static_cast<int>(ints[3]), -5);
  EXPECT_EQ(ints.sum(), -5);

  auto floats = cluster.make_remote_array<float>(1, 4);
  floats.fill(0.5f);
  EXPECT_FLOAT_EQ(floats.sum(), 2.0f);

  auto longs = cluster.make_remote_array<std::uint64_t>(
      1, std::vector<std::uint64_t>{1, 2, 3});
  EXPECT_EQ(longs.to_vector(), (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(Checksums, NoFalsePositivesUnderLoad) {
  Cluster::Options opts;
  opts.machines = 2;
  opts.node.checksums = true;
  Cluster cluster(opts);
  auto data = cluster.make_remote_array<double>(1, 4096);
  std::vector<double> buf(4096, 1.0);
  for (int i = 0; i < 50; ++i) {
    data.assign(0, buf);
    ASSERT_EQ(data.to_vector(), buf);
  }
}

TEST(Group, EmptyGroupOperationsAreNoOps) {
  Cluster cluster(1);
  ProcessGroup<Napper> group;
  group.barrier();
  group.destroy_all();
  auto futs = group.async<&Napper::nap>(1);
  EXPECT_TRUE(futs.empty());
}

TEST(Watchdog, DetectsLifeAndDeath) {
  Cluster cluster(3);
  // The watchdog is itself a remote process (on machine 2), actively
  // probing objects on other machines from its own internal thread.
  auto dog = cluster.make_remote<Watchdog>(2, std::uint32_t{20});
  auto a = cluster.make_remote<Napper>(0);
  auto b = cluster.make_remote<Napper>(1);
  dog.call<&Watchdog::watch>(a.ref());
  dog.call<&Watchdog::watch>(b.ref());

  // Give it a few probe rounds.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (dog.call<&Watchdog::rounds>() < 2 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));

  auto reports = dog.call<&Watchdog::status>();
  ASSERT_EQ(reports.size(), 2u);
  for (const auto& r : reports) EXPECT_EQ(r.state, WatchState::kAlive);

  // Kill one; the watchdog must flag it within a few periods.
  b.destroy();
  const auto r0 = dog.call<&Watchdog::rounds>();
  while (dog.call<&Watchdog::rounds>() < r0 + 3 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));

  for (const auto& r : dog.call<&Watchdog::status>()) {
    if (r.target == b.ref()) {
      EXPECT_EQ(r.state, WatchState::kDead);
      EXPECT_GT(r.failures, 0u);
    } else {
      EXPECT_EQ(r.state, WatchState::kAlive);
    }
  }

  EXPECT_TRUE(dog.call<&Watchdog::unwatch>(b.ref()));
  EXPECT_FALSE(dog.call<&Watchdog::unwatch>(b.ref()));
  dog.destroy();  // joins the prober cleanly
}

TEST(Watchdog, RewatchDuringProbeRoundDoesNotResurrectStaleCounts) {
  // Regression: probe_loop snapshots reports_, probes unlocked, then used
  // to merge whole WatchReport copies back.  A target unwatched and
  // re-watched while a round was in flight got its fresh counters
  // overwritten by the stale pre-unwatch snapshot.  The merge is now
  // delta-only.
  Cluster cluster(2);
  auto ctx = cluster.use(0);
  auto slow = cluster.make_remote<Napper>(1);
  Watchdog dog(10);
  dog.watch(slow.ref());

  // Accumulate probe history the bug would resurrect.
  while (dog.rounds() < 8)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));

  // Stall the next round: its ping waits behind a long nap in the
  // target's command queue.
  auto nap = slow.async<&Napper::nap>(300);
  const auto r0 = dog.rounds();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // Reset the entry while the stalled round (carrying the old snapshot)
  // is still executing.
  ASSERT_TRUE(dog.unwatch(slow.ref()));
  dog.watch(slow.ref());

  (void)nap.get();
  while (dog.rounds() < r0 + 2)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));

  auto reports = dog.status();
  ASSERT_EQ(reports.size(), 1u);
  // Fresh entry + in-flight round's delta + a couple of fast rounds: far
  // below the >= 9 probes the stale snapshot would have restored.
  EXPECT_LT(reports[0].probes, 6u);
}

TEST(Watchdog, DrivesKvFailover) {
  // Supervision loop: watchdog detects a dead primary, the driver reacts
  // by promoting the backup — detection + recovery end to end.
  Cluster cluster(4);
  auto store = kv::KvStore::create(
      kv::KvStore::Config{.shards = 2, .replicate = true},
      [&](int s) { return static_cast<oopp::net::MachineId>(s % 4); },
      [&](int s) { return static_cast<oopp::net::MachineId>((s + 1) % 4); });
  store.put("k", "v");

  auto dog = cluster.make_remote<Watchdog>(3, std::uint32_t{15});
  for (int s = 0; s < store.shards(); ++s)
    dog.call<&Watchdog::watch>(store.primary(s).ref());

  store.primary(1).destroy();  // silent failure

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  bool recovered = false;
  while (!recovered && std::chrono::steady_clock::now() < deadline) {
    for (const auto& r : dog.call<&Watchdog::status>()) {
      if (r.state == WatchState::kDead) {
        // Identify the shard and fail over.
        for (int s = 0; s < store.shards(); ++s) {
          if (store.primary(s).ref() == r.target) {
            store.promote_backup(s);
            dog.call<&Watchdog::unwatch>(r.target);
            dog.call<&Watchdog::watch>(store.primary(s).ref());
            recovered = true;
          }
        }
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(recovered);
  EXPECT_EQ(store.get("k"), std::optional<std::string>("v"));
  dog.destroy();
  store.destroy();
}

TEST(Ping, StandalonePingAndAsyncPing) {
  Cluster cluster(2);
  auto n = cluster.make_remote<Napper>(1);
  n.ping();
  auto f = n.async_ping();
  f.get();
  n.destroy();
  EXPECT_THROW(n.ping(), rpc::ObjectNotFound);
}

}  // namespace
