// Sanitizer smoke tests: short, hot concurrent workloads over the
// primitives where a data race or lifetime bug would hide — Inbox
// push/pop/close, ElasticPool submit-during-shutdown, Watchdog
// construct/destroy under probing.  They assert functional properties
// (counts, exceptions) and exist chiefly so the TSan/ASan CI lanes have
// racy-by-construction traffic to inspect.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/oopp.hpp"
#include "core/watchdog.hpp"
#include "net/inbox.hpp"
#include "util/thread_pool.hpp"

using namespace std::chrono_literals;
using oopp::net::Inbox;
using oopp::net::Message;

namespace {

Message make_msg(std::uint64_t seq) {
  return oopp::net::make_request(
      0, 1, seq, /*object=*/0, /*method=*/0,
      std::vector<std::byte>(8, static_cast<std::byte>(seq & 0xff)),
      /*checksum=*/false);
}

// Producers and consumers hammer one inbox; close() lands mid-stream.
// Every message accepted before close() must be delivered exactly once,
// and every consumer must observe the closed/drained nullopt.
TEST(SanitizeSmoke, InboxConcurrentPushPopClose) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 500;

  Inbox inbox;
  std::atomic<int> popped{0};
  std::atomic<int> drained{0};

  std::vector<std::thread> threads;
  threads.reserve(kProducers + kConsumers + 1);
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (inbox.pop().has_value()) popped.fetch_add(1);
      drained.fetch_add(1);
    });
  }
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        // A mix of immediate and future delivery times so close() catches
        // consumers inside the timed wait.
        auto at = oopp::steady_clock::now() + ((i % 7 == 0) ? 2ms : 0ms);
        inbox.push(make_msg(static_cast<std::uint64_t>(p * kPerProducer + i)),
                   at);
      }
    });
  }
  threads.emplace_back([&] {
    std::this_thread::sleep_for(5ms);
    inbox.close();
  });
  for (auto& t : threads) t.join();

  // close() may race individual pushes (those are dropped by design), but
  // nothing is delivered twice and nothing accepted goes missing:
  EXPECT_LE(popped.load(), kProducers * kPerProducer);
  EXPECT_EQ(inbox.size(), 0u);  // consumers fully drained the backlog
  EXPECT_EQ(drained.load(), kConsumers);
}

// Everything pushed strictly before close() is delivered despite pending
// simulated delays (the delay collapses at close).
TEST(SanitizeSmoke, InboxCloseReleasesDelayedBacklog) {
  Inbox inbox;
  for (int i = 0; i < 32; ++i)
    inbox.push(make_msg(static_cast<std::uint64_t>(i)),
               oopp::steady_clock::now() + 10s);  // far future
  std::thread closer([&] {
    std::this_thread::sleep_for(2ms);
    inbox.close();
  });
  int got = 0;
  while (inbox.pop().has_value()) ++got;  // must not wait 10 seconds
  closer.join();
  EXPECT_EQ(got, 32);
}

// Submitters race shutdown(): each submit either runs (the pool accepted
// it) or throws std::runtime_error (it was shut down) — never a hang, a
// lost task, or a crash.
TEST(SanitizeSmoke, PoolSubmitDuringShutdown) {
  for (int round = 0; round < 8; ++round) {
    oopp::ElasticPool pool(
        oopp::ElasticPool::Options{.min_threads = 2, .max_threads = 16});
    std::atomic<int> ran{0};
    std::atomic<int> rejected{0};

    std::vector<std::thread> submitters;
    submitters.reserve(4);
    for (int s = 0; s < 4; ++s) {
      submitters.emplace_back([&] {
        for (int i = 0; i < 200; ++i) {
          try {
            pool.submit([&ran] { ran.fetch_add(1); });
          } catch (const std::runtime_error&) {
            rejected.fetch_add(1);
          }
        }
      });
    }
    std::thread stopper([&] { pool.shutdown(); });
    for (auto& t : submitters) t.join();
    stopper.join();

    // Accepted tasks all ran (shutdown drains the queue).
    EXPECT_EQ(ran.load() + rejected.load(), 4 * 200);
    EXPECT_EQ(static_cast<std::uint64_t>(ran.load()), pool.tasks_run());
  }
}

// Construct/destroy watchdogs while their prober threads are mid-probe,
// with targets vanishing underneath them.
TEST(SanitizeSmoke, WatchdogStartStopRaces) {
  oopp::Cluster cluster(2);
  auto ctx = cluster.use(0);
  for (int round = 0; round < 10; ++round) {
    auto victim = cluster.make_remote<oopp::RemoteVector<double>>(
        1, std::uint64_t{8});
    {
      oopp::Watchdog dog(1 /*ms*/);
      dog.watch(victim.ref());
      std::this_thread::sleep_for(2ms);
      if (round % 2 == 0) victim.destroy();  // dies while being probed
      std::this_thread::sleep_for(2ms);
    }  // destructor races the in-flight probe
    if (round % 2 != 0) victim.destroy();
  }
}

}  // namespace
