// End-to-end tests of the core framework through the Cluster facade:
// remote construction, remote data blocks, process groups, persistence
// with symbolic addresses, and both fabrics.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "core/oopp.hpp"

using oopp::Cluster;
using oopp::Future;
using oopp::ProcessGroup;
using oopp::remote_data;
using oopp::remote_ptr;
namespace rpc = oopp::rpc;

namespace {

class Accumulator {
 public:
  Accumulator() = default;
  explicit Accumulator(double start) : total_(start) {}
  explicit Accumulator(oopp::serial::IArchive& ia) { ia(total_); }
  void oopp_save(oopp::serial::OArchive& oa) const { oa(total_); }

  double add(double x) { return total_ += x; }
  double total() const { return total_; }

 private:
  double total_ = 0.0;
};

/// Member of a process group that receives the whole group (the paper's
/// SetGroup deep-copy idiom) and can interact with peers.
class GroupMember {
 public:
  explicit GroupMember(int id) : id_(id) {}

  void set_group(int n, const ProcessGroup<GroupMember>& group) {
    n_ = n;
    group_ = group;  // deep copy: a local array of remote pointers
  }

  int id() const { return id_; }
  int group_size() const { return static_cast<int>(group_.size()); }

  /// Ask the right-hand neighbour for its id (nested peer call).
  int neighbour_id() const {
    return group_[(id_ + 1) % n_].call<&GroupMember::id>();
  }

 private:
  int id_ = 0;
  int n_ = 0;
  ProcessGroup<GroupMember> group_;
};

}  // namespace

template <>
struct oopp::rpc::class_def<Accumulator> {
  static std::string name() { return "test.Accumulator"; }
  using ctors = ctor_list<ctor<>, ctor<double>>;
  template <class B>
  static void bind(B& b) {
    b.template method<&Accumulator::add>("add");
    b.template method<&Accumulator::total>("total");
    b.persistent();
  }
};

template <>
struct oopp::rpc::class_def<GroupMember> {
  static std::string name() { return "test.GroupMember"; }
  using ctors = ctor_list<ctor<int>>;
  template <class B>
  static void bind(B& b) {
    b.template method<&GroupMember::set_group>("set_group");
    b.template method<&GroupMember::id>("id");
    b.template method<&GroupMember::group_size>("group_size");
    b.template method<&GroupMember::neighbour_id>("neighbour_id");
  }
};

namespace {

TEST(Cluster, ConstructAndTearDown) {
  Cluster cluster(4);
  EXPECT_EQ(cluster.size(), 4u);
}

TEST(Cluster, MakeRemoteOnEveryMachine) {
  Cluster cluster(4);
  for (std::size_t m = 0; m < cluster.size(); ++m) {
    auto a = cluster.make_remote<Accumulator>(m, 1.5);
    EXPECT_DOUBLE_EQ(a.call<&Accumulator::add>(2.5), 4.0);
  }
}

TEST(Cluster, RemoteDataElementSemantics) {
  // Paper §2: data[7] = 3.1415; double x = data[2];
  Cluster cluster(3);
  auto data = cluster.make_remote_array<double>(2, 1024);
  data[7] = 3.1415;
  const double x = data[7];
  EXPECT_DOUBLE_EQ(x, 3.1415);
  EXPECT_DOUBLE_EQ(data[2], 0.0);
  EXPECT_EQ(data.size(), 1024u);
}

TEST(Cluster, RemoteDataBulkOps) {
  Cluster cluster(2);
  std::vector<double> init(256);
  std::iota(init.begin(), init.end(), 0.0);
  auto data = cluster.make_remote_array<double>(1, init);
  EXPECT_EQ(data.to_vector(), init);
  EXPECT_DOUBLE_EQ(data.sum(), 255.0 * 256.0 / 2.0);
  auto mid = data.slice(100, 5);
  EXPECT_EQ(mid, (std::vector<double>{100, 101, 102, 103, 104}));
  data.assign(0, {9.0, 9.0});
  EXPECT_DOUBLE_EQ(data[0], 9.0);
  EXPECT_DOUBLE_EQ(data[1], 9.0);
  data.fill(1.0);
  EXPECT_DOUBLE_EQ(data.sum(), 256.0);
  data.destroy();
  EXPECT_FALSE(data.valid());
}

TEST(Cluster, RemoteDataOutOfBoundsRaisesRemoteError) {
  Cluster cluster(2);
  auto data = cluster.make_remote_array<double>(1, 8);
  EXPECT_THROW(data[8] = 1.0, rpc::RemoteError);
}

TEST(Cluster, ProcessGroupSetGroupDeepCopy) {
  // The paper's §4 idiom: create N processes, hand each the whole group.
  Cluster cluster(4);
  ProcessGroup<GroupMember> group;
  const int n = 8;
  for (int i = 0; i < n; ++i)
    group.push_back(
        cluster.make_remote<GroupMember>(i % cluster.size(), i));
  for (int i = 0; i < n; ++i)
    group[i].call<&GroupMember::set_group>(n, group);

  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(group[i].call<&GroupMember::group_size>(), n);
    EXPECT_EQ(group[i].call<&GroupMember::neighbour_id>(), (i + 1) % n);
  }
  group.barrier();
  group.destroy_all();
  EXPECT_TRUE(group.empty());
}

TEST(Cluster, GroupCollectAndInvokeAll) {
  Cluster cluster(3);
  ProcessGroup<Accumulator> group;
  for (int i = 0; i < 6; ++i)
    group.push_back(cluster.make_remote<Accumulator>(i % 3, double(i)));
  auto totals = group.gather<&Accumulator::total>();
  EXPECT_EQ(totals, (std::vector<double>{0, 1, 2, 3, 4, 5}));
  group.gather<&Accumulator::add>(10.0);
  totals = group.gather<&Accumulator::total>();
  EXPECT_EQ(totals, (std::vector<double>{10, 11, 12, 13, 14, 15}));
}

TEST(Cluster, PersistLookupLive) {
  Cluster cluster(3);
  auto a = cluster.make_remote<Accumulator>(2, 5.0);
  a.call<&Accumulator::add>(1.0);
  cluster.persist(a, "oopp://test/acc/1");

  // Live lookup returns the same process.
  auto b = cluster.lookup<Accumulator>("oopp://test/acc/1");
  EXPECT_EQ(b.machine(), a.machine());
  EXPECT_EQ(b.id(), a.id());
  b.call<&Accumulator::add>(1.0);
  EXPECT_DOUBLE_EQ(a.call<&Accumulator::total>(), 7.0);
}

TEST(Cluster, PassivateThenActivate) {
  Cluster cluster(3);
  auto a = cluster.make_remote<Accumulator>(1, 2.0);
  a.call<&Accumulator::add>(3.0);
  cluster.passivate(a, "oopp://test/acc/sleepy");

  // The live process is gone.
  EXPECT_THROW(a.call<&Accumulator::total>(), rpc::ObjectNotFound);

  // Lookup re-activates from the image, on the home machine by default.
  auto b = cluster.lookup<Accumulator>("oopp://test/acc/sleepy");
  EXPECT_EQ(b.machine(), 1u);
  EXPECT_DOUBLE_EQ(b.call<&Accumulator::total>(), 5.0);

  // Second lookup sees the (now live) process, not a second copy.
  auto c = cluster.lookup<Accumulator>("oopp://test/acc/sleepy");
  EXPECT_EQ(c.id(), b.id());
}

TEST(Cluster, ActivateOnDifferentMachine) {
  Cluster cluster(4);
  auto a = cluster.make_remote<Accumulator>(1, 9.0);
  cluster.passivate(a, "oopp://test/acc/mover");
  auto b = cluster.lookup<Accumulator>("oopp://test/acc/mover", 3);
  EXPECT_EQ(b.machine(), 3u);
  EXPECT_DOUBLE_EQ(b.call<&Accumulator::total>(), 9.0);
}

TEST(Cluster, MigrateMovesProcessBetweenMachines) {
  Cluster cluster(4);
  auto a = cluster.make_remote<Accumulator>(1, 5.0);
  a.call<&Accumulator::add>(2.0);

  auto b = cluster.migrate(a, 3);
  EXPECT_EQ(b.machine(), 3u);
  EXPECT_DOUBLE_EQ(b.call<&Accumulator::total>(), 7.0);
  // The old identity is gone.
  EXPECT_THROW(a.call<&Accumulator::total>(), rpc::ObjectNotFound);
  // The migrated process is fully functional.
  EXPECT_DOUBLE_EQ(b.call<&Accumulator::add>(1.0), 8.0);
}

TEST(Cluster, MigrateUpdatesSymbolicAddress) {
  Cluster cluster(4);
  auto a = cluster.make_remote<Accumulator>(1, 4.0);
  cluster.persist(a, "oopp://migrate/acc");
  auto b = cluster.migrate(a, 2);
  // The registry follows the move: lookup resolves to the new identity.
  auto via_uri = cluster.lookup<Accumulator>("oopp://migrate/acc");
  EXPECT_EQ(via_uri.machine(), 2u);
  EXPECT_EQ(via_uri.id(), b.id());
  EXPECT_DOUBLE_EQ(via_uri.call<&Accumulator::total>(), 4.0);
}

TEST(Cluster, MigrateCompletesQueuedWorkFirst) {
  Cluster cluster(3);
  auto a = cluster.make_remote<Accumulator>(1, 0.0);
  // Queue up additions, migrate immediately: FIFO semantics means the
  // checkpoint happens after they all applied.
  std::vector<Future<double>> futs;
  for (int i = 0; i < 50; ++i) futs.push_back(a.async<&Accumulator::add>(1.0));
  auto b = cluster.migrate(a, 2);
  for (auto& f : futs) (void)f.get();
  EXPECT_DOUBLE_EQ(b.call<&Accumulator::total>(), 50.0);
}

TEST(Cluster, LookupUnknownUriThrows) {
  Cluster cluster(2);
  EXPECT_THROW(cluster.lookup<Accumulator>("oopp://nope"), oopp::Error);
}

TEST(Cluster, LookupWrongTypeThrows) {
  Cluster cluster(2);
  auto a = cluster.make_remote<Accumulator>(1, 0.0);
  cluster.persist(a, "oopp://test/acc/typed");
  EXPECT_THROW(cluster.lookup<GroupMember>("oopp://test/acc/typed"),
               oopp::Error);
}

TEST(Cluster, ForgetRemovesRecord) {
  Cluster cluster(2);
  auto a = cluster.make_remote<Accumulator>(1, 0.0);
  cluster.persist(a, "oopp://test/acc/gone");
  EXPECT_EQ(cluster.persisted_uris().size(), 1u);
  EXPECT_TRUE(cluster.forget("oopp://test/acc/gone"));
  EXPECT_FALSE(cluster.forget("oopp://test/acc/gone"));
  EXPECT_TRUE(cluster.persisted_uris().empty());
}

TEST(Cluster, PersistedUrisLists) {
  Cluster cluster(2);
  auto a = cluster.make_remote<Accumulator>(0, 0.0);
  auto b = cluster.make_remote<Accumulator>(1, 0.0);
  cluster.persist(a, "oopp://x");
  cluster.persist(b, "oopp://y");
  auto uris = cluster.persisted_uris();
  EXPECT_EQ(uris.size(), 2u);
}

TEST(Cluster, RemoteVectorPersistence) {
  Cluster cluster(2);
  auto data = cluster.make_remote_array<double>(1, 16);
  data[3] = 42.0;
  cluster.passivate(data.ptr(), "oopp://test/vec");
  auto restored = cluster.lookup<oopp::RemoteVector<double>>("oopp://test/vec");
  EXPECT_DOUBLE_EQ(restored.call<&oopp::RemoteVector<double>::get>(3), 42.0);
}

TEST(Cluster, RegistrySurvivesClusterRestart) {
  // The full §5 story: persistent processes must outlive not just their
  // creator but the whole runtime incarnation.
  const auto dir = std::filesystem::temp_directory_path() /
                   ("oopp-registry-restart-" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);

  {
    Cluster::Options opts;
    opts.machines = 3;
    opts.state_dir = dir;
    opts.persistent_registry = true;
    Cluster first(opts);
    auto a = first.make_remote<Accumulator>(1, 10.0);
    a.call<&Accumulator::add>(5.0);
    first.passivate(a, "oopp://restart/passive");
    auto b = first.make_remote<Accumulator>(2, 77.0);
    first.persist(b, "oopp://restart/was-live");
    // first is destroyed here; the registry checkpoints itself.
  }

  {
    Cluster::Options opts;
    opts.machines = 3;
    opts.state_dir = dir;
    opts.persistent_registry = true;
    Cluster second(opts);
    // Both records survive; the was-live one re-activates from its last
    // checkpoint (its process died with the first cluster).
    auto uris = second.persisted_uris();
    EXPECT_EQ(uris.size(), 2u);
    auto a = second.lookup<Accumulator>("oopp://restart/passive");
    EXPECT_DOUBLE_EQ(a.call<&Accumulator::total>(), 15.0);
    auto b = second.lookup<Accumulator>("oopp://restart/was-live");
    EXPECT_DOUBLE_EQ(b.call<&Accumulator::total>(), 77.0);
  }

  std::filesystem::remove_all(dir);
}

TEST(Cluster, CheckpointAllThenRestartResumesLatestState) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("oopp-ckpt-all-" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  {
    Cluster::Options opts;
    opts.machines = 2;
    opts.state_dir = dir;
    opts.persistent_registry = true;
    Cluster first(opts);
    auto a = first.make_remote<Accumulator>(0, 1.0);
    auto b = first.make_remote<Accumulator>(1, 2.0);
    first.persist(a, "oopp://all/a");  // image holds 1.0
    first.persist(b, "oopp://all/b");  // image holds 2.0
    a.call<&Accumulator::add>(10.0);
    b.call<&Accumulator::add>(20.0);
    // Without checkpoint_all a restart would resume the stale images.
    EXPECT_EQ(first.checkpoint_all(), 2u);
  }
  {
    Cluster::Options opts;
    opts.machines = 2;
    opts.state_dir = dir;
    opts.persistent_registry = true;
    Cluster second(opts);
    EXPECT_DOUBLE_EQ(
        second.lookup<Accumulator>("oopp://all/a").call<&Accumulator::total>(),
        11.0);
    EXPECT_DOUBLE_EQ(
        second.lookup<Accumulator>("oopp://all/b").call<&Accumulator::total>(),
        22.0);
  }
  std::filesystem::remove_all(dir);
}

TEST(Cluster, PersistentRegistryRequiresStateDir) {
  Cluster::Options opts;
  opts.machines = 1;
  opts.persistent_registry = true;
  EXPECT_THROW(Cluster cluster(opts), oopp::check_error);
}

TEST(Cluster, SaveRegistryExplicitly) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("oopp-registry-save-" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  Cluster::Options opts;
  opts.machines = 2;
  opts.state_dir = dir;
  opts.persistent_registry = true;
  Cluster cluster(opts);
  auto a = cluster.make_remote<Accumulator>(1, 1.0);
  cluster.persist(a, "oopp://save/x");
  cluster.save_registry();
  EXPECT_TRUE(std::filesystem::exists(dir / "registry.img"));
  // The registry keeps working after its own checkpoint.
  EXPECT_EQ(cluster.persisted_uris().size(), 1u);
  std::filesystem::remove_all(dir);
}

TEST(Cluster, TcpFabricEndToEnd) {
  Cluster::Options opts;
  opts.machines = 3;
  opts.fabric = Cluster::FabricKind::kTcp;
  Cluster cluster(opts);
  auto a = cluster.make_remote<Accumulator>(1, 1.0);
  auto b = cluster.make_remote<Accumulator>(2, 2.0);
  EXPECT_DOUBLE_EQ(a.call<&Accumulator::add>(10.0), 11.0);
  EXPECT_DOUBLE_EQ(b.call<&Accumulator::add>(10.0), 12.0);
  std::vector<Future<double>> futs;
  for (int i = 0; i < 20; ++i) futs.push_back(a.async<&Accumulator::add>(1.0));
  for (auto& f : futs) f.get();
  EXPECT_DOUBLE_EQ(a.call<&Accumulator::total>(), 31.0);
}

TEST(Cluster, CostModelClusterStillCorrect) {
  Cluster::Options opts;
  opts.machines = 2;
  opts.cost = oopp::net::CostModel{.latency_ns = 200'000,
                                   .bytes_per_us = 5000.0,
                                   .per_message_ns = 0};
  Cluster cluster(opts);
  auto a = cluster.make_remote<Accumulator>(1, 0.0);
  for (int i = 0; i < 5; ++i) a.call<&Accumulator::add>(1.0);
  EXPECT_DOUBLE_EQ(a.call<&Accumulator::total>(), 5.0);
}

TEST(Cluster, SingleMachineClusterWorks) {
  Cluster cluster(1);
  auto a = cluster.make_remote<Accumulator>(0, 3.0);
  EXPECT_DOUBLE_EQ(a.call<&Accumulator::total>(), 3.0);
}

TEST(Cluster, UseGuardGivesOtherThreadsAContext) {
  Cluster cluster(2);
  std::thread worker([&] {
    auto guard = cluster.use(1);
    auto a = oopp::make_remote<Accumulator>(0, 4.0);
    EXPECT_DOUBLE_EQ(a.call<&Accumulator::total>(), 4.0);
  });
  worker.join();
}

// §5: "The runtime system is responsible for storing process
// representation, and activating and de-activating processes, as needed."
TEST(Cluster, ActiveLimitPassivatesLeastRecentlyUsed) {
  Cluster cluster(3);
  cluster.set_active_limit(2);

  auto a = cluster.make_remote<Accumulator>(0, 1.0);
  auto b = cluster.make_remote<Accumulator>(1, 2.0);
  auto c = cluster.make_remote<Accumulator>(2, 3.0);
  cluster.persist(a, "oopp://lru/a");
  cluster.persist(b, "oopp://lru/b");
  EXPECT_EQ(cluster.active_registered(), 2u);

  // Registering c evicts a (the LRU): a's process is gone, its state
  // saved.
  cluster.persist(c, "oopp://lru/c");
  EXPECT_EQ(cluster.active_registered(), 2u);
  EXPECT_THROW(a.call<&Accumulator::total>(), rpc::ObjectNotFound);
  EXPECT_DOUBLE_EQ(b.call<&Accumulator::total>(), 2.0);

  // Symbolic access re-activates a transparently — and now evicts b.
  auto a2 = cluster.lookup<Accumulator>("oopp://lru/a");
  EXPECT_DOUBLE_EQ(a2.call<&Accumulator::total>(), 1.0);
  EXPECT_THROW(b.call<&Accumulator::total>(), rpc::ObjectNotFound);

  // c was touched less recently than a2 now; looking b up evicts c.
  auto b2 = cluster.lookup<Accumulator>("oopp://lru/b");
  EXPECT_DOUBLE_EQ(b2.call<&Accumulator::total>(), 2.0);
  EXPECT_THROW(c.call<&Accumulator::total>(), rpc::ObjectNotFound);
  EXPECT_EQ(cluster.active_registered(), 2u);
}

TEST(Cluster, LoweringActiveLimitEvictsImmediately) {
  Cluster cluster(2);
  auto a = cluster.make_remote<Accumulator>(0, 1.0);
  auto b = cluster.make_remote<Accumulator>(1, 2.0);
  cluster.persist(a, "oopp://lru2/a");
  cluster.persist(b, "oopp://lru2/b");
  EXPECT_EQ(cluster.active_registered(), 2u);
  cluster.set_active_limit(1);
  EXPECT_EQ(cluster.active_registered(), 1u);
  EXPECT_THROW(a.call<&Accumulator::total>(), rpc::ObjectNotFound);
  EXPECT_DOUBLE_EQ(b.call<&Accumulator::total>(), 2.0);
}

TEST(Cluster, ExplicitPassivateLeavesLruConsistent) {
  Cluster cluster(2);
  cluster.set_active_limit(4);
  auto a = cluster.make_remote<Accumulator>(0, 1.0);
  cluster.persist(a, "oopp://lru3/a");
  EXPECT_EQ(cluster.active_registered(), 1u);
  cluster.passivate(a, "oopp://lru3/a");
  EXPECT_EQ(cluster.active_registered(), 0u);
  auto back = cluster.lookup<Accumulator>("oopp://lru3/a");
  EXPECT_DOUBLE_EQ(back.call<&Accumulator::total>(), 1.0);
  EXPECT_EQ(cluster.active_registered(), 1u);
}

// §2's "shared memory implementation": one data block shared among N
// computing processes.
TEST(Cluster, SharedDataBlockAmongComputingProcesses) {
  Cluster cluster(4);
  auto data = cluster.make_remote_array<double>(0, 64);

  // N "ComputingProcess" stand-ins: driver threads on different machines,
  // each updating a disjoint range of the shared block.
  constexpr int kN = 4;
  std::vector<std::thread> procs;
  for (int p = 0; p < kN; ++p) {
    procs.emplace_back([&, p] {
      auto guard = cluster.use(static_cast<oopp::net::MachineId>(p));
      for (std::uint64_t i = p * 16; i < (p + 1) * 16u; ++i)
        data[i] = double(p + 1);
    });
  }
  for (auto& t : procs) t.join();

  double expect = 0.0;
  for (int p = 0; p < kN; ++p) expect += 16.0 * (p + 1);
  EXPECT_DOUBLE_EQ(data.sum(), expect);
}

TEST(Cluster, TraceHookObservesCalls) {
  Cluster cluster(2);
  std::mutex mu;
  std::vector<std::string> seen;
  cluster.node(1).set_trace([&](const oopp::rpc::CallTrace& t) {
    std::lock_guard lock(mu);
    seen.push_back(std::string(t.class_name) + "::" + std::string(t.method) +
                   (t.status == oopp::net::CallStatus::kOk ? "" : "!"));
    EXPECT_EQ(t.caller, 0u);
    EXPECT_GE(t.duration_ns, 0);
  });

  auto a = cluster.make_remote<Accumulator>(1, 0.0);
  a.call<&Accumulator::add>(1.0);
  a.call<&Accumulator::total>();

  std::lock_guard lock(mu);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], "test.Accumulator::add");
  EXPECT_EQ(seen[1], "test.Accumulator::total");
}

TEST(Cluster, FabricAccounting) {
  Cluster cluster(2);
  const auto msgs0 = cluster.fabric().messages_sent();
  auto a = cluster.make_remote<Accumulator>(1, 0.0);
  a.call<&Accumulator::add>(1.0);
  // spawn req+resp, add req+resp = 4 messages minimum.
  EXPECT_GE(cluster.fabric().messages_sent(), msgs0 + 4);
}

}  // namespace
