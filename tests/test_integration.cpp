// Whole-stack integration scenarios, each run on BOTH fabrics (simulated
// in-process interconnect and real TCP loopback sockets).  The framework's
// promise is that programs are fabric-agnostic; these tests hold it to
// that across storage, arrays, FFT, groups, persistence and metrics.
#include <gtest/gtest.h>

#include <filesystem>
#include <numeric>

#include "array/array.hpp"
#include "array/block_storage.hpp"
#include "core/oopp.hpp"
#include "fft/fft3d.hpp"
#include "fft/fft_worker.hpp"
#include "storage/array_page_device.hpp"
#include "util/prng.hpp"

using namespace oopp;
namespace arr = oopp::array;
namespace fs = std::filesystem;

namespace {

class Integration : public ::testing::TestWithParam<Cluster::FabricKind> {
 protected:
  Integration() {
    dir_ = fs::temp_directory_path() /
           ("oopp-integ-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter_++));
    fs::create_directories(dir_);
    Cluster::Options opts;
    opts.machines = 4;
    opts.fabric = GetParam();
    cluster_ = std::make_unique<Cluster>(opts);
  }
  ~Integration() override {
    cluster_.reset();
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (dir_ / name).string();
  }

  static inline int counter_ = 0;
  fs::path dir_;
  std::unique_ptr<Cluster> cluster_;
};

TEST_P(Integration, StoragePipeline) {
  // Devices on three machines; write pages through one, adopt through a
  // derived process, reduce device-side.
  auto dev = cluster_->make_remote<storage::ArrayPageDevice>(
      1, file("blocks"), 6, 4, 4, 4);
  storage::ArrayPage page(4, 4, 4);
  for (index_t i = 0; i < page.elements(); ++i)
    page.values()[i] = double(i % 17);
  for (int p = 0; p < 6; ++p)
    dev.call<&storage::ArrayPageDevice::write_array>(page, p);
  double total = 0.0;
  for (int p = 0; p < 6; ++p)
    total += dev.call<&storage::ArrayPageDevice::sum>(p);
  EXPECT_DOUBLE_EQ(total, 6.0 * page.sum());

  remote_ptr<storage::PageDevice> base = dev;
  EXPECT_EQ(base.call<&storage::PageDevice::number_of_pages>(), 6);
  dev.destroy();
}

TEST_P(Integration, DistributedArrayRoundTrip) {
  const Extents3 N{12, 10, 8};
  const Extents3 n{4, 4, 4};
  const Extents3 grid{3, 3, 2};
  const arr::PageMapSpec spec{arr::PageMapKind::kRoundRobin};

  arr::BlockStorageConfig cfg;
  cfg.file_prefix = file("dev");
  cfg.devices = 4;
  cfg.pages_per_device =
      static_cast<std::int32_t>(spec.pages_per_device(grid, 4));
  cfg.n1 = 4;
  cfg.n2 = 4;
  cfg.n3 = 4;
  auto storage = arr::create_block_storage(cfg, [&](std::int32_t i) {
    return static_cast<net::MachineId>(i % cluster_->size());
  });

  arr::Array a(N.n1, N.n2, N.n3, n.n1, n.n2, n.n3, storage, spec);
  const arr::Domain d(1, 11, 2, 9, 0, 8);
  std::vector<double> buf(static_cast<std::size_t>(d.volume()));
  std::iota(buf.begin(), buf.end(), 0.5);
  a.write(buf, d);
  EXPECT_EQ(a.read(d), buf);
  EXPECT_NEAR(a.sum(d), std::accumulate(buf.begin(), buf.end(), 0.0), 1e-9);
  arr::destroy_block_storage(storage);
}

TEST_P(Integration, DistributedFftGroup) {
  const Extents3 e{8, 8, 8};
  fft::DistributedFFT3D dfft(e, 4, [&](int w) {
    return static_cast<net::MachineId>(w % cluster_->size());
  });
  Xoshiro256 rng(31);
  std::vector<fft::cplx> x(static_cast<std::size_t>(e.volume()));
  for (auto& v : x) v = fft::cplx(rng.uniform(-1, 1), rng.uniform(-1, 1));
  auto expect = x;
  fft::fft3d_inplace(expect, e, -1);

  dfft.scatter(x);
  dfft.forward();
  auto got = dfft.gather();
  double err = 0.0;
  for (std::size_t i = 0; i < got.size(); ++i)
    err = std::max(err, std::abs(got[i] - expect[i]));
  EXPECT_LT(err, 1e-9);
  dfft.shutdown();
}

TEST_P(Integration, PersistenceLifecycle) {
  auto data = cluster_->make_remote_array<double>(2, 64);
  data[5] = 2.5;
  cluster_->passivate(data.ptr(), "oopp://integ/vec");
  auto revived = cluster_->lookup<RemoteVector<double>>("oopp://integ/vec", 1);
  EXPECT_EQ(revived.machine(), 1u);
  EXPECT_DOUBLE_EQ(revived.call<&RemoteVector<double>::get>(5), 2.5);
  cluster_->forget("oopp://integ/vec");
}

TEST_P(Integration, GroupBarrierAndStats) {
  ProcessGroup<RemoteVector<double>> group;
  for (int i = 0; i < 8; ++i)
    group.push_back(cluster_->make_remote<RemoteVector<double>>(
        static_cast<net::MachineId>(i % cluster_->size()),
        std::uint64_t{32}));
  group.gather<&RemoteVector<double>::fill>(1.0);
  group.barrier();
  for (auto total : group.gather<&RemoteVector<double>::sum>())
    EXPECT_DOUBLE_EQ(total, 32.0);

  const auto stats = cluster_->stats();
  EXPECT_EQ(stats.per_node.size(), cluster_->size());
  const auto t = stats.totals();
  EXPECT_GE(t.objects_spawned, 8u);
  EXPECT_GT(t.requests_served, 0u);
  EXPECT_GT(stats.messages_sent, 0u);
  EXPECT_GT(stats.bytes_sent, 0u);
  group.destroy_all();
}

TEST_P(Integration, ExceptionPropagationAcrossStack) {
  auto dev = cluster_->make_remote<storage::ArrayPageDevice>(
      3, file("errs"), 2, 2, 2, 2);
  try {
    dev.call<&storage::ArrayPageDevice::sum>(42);
    FAIL() << "expected RemoteError";
  } catch (const rpc::RemoteError& e) {
    EXPECT_EQ(e.machine(), 3u);
    EXPECT_NE(std::string(e.what()).find("out of"), std::string::npos);
  }
  dev.destroy();
}

INSTANTIATE_TEST_SUITE_P(
    Fabrics, Integration,
    ::testing::Values(Cluster::FabricKind::kInProc,
                      Cluster::FabricKind::kTcp),
    [](const ::testing::TestParamInfo<Cluster::FabricKind>& param_info) {
      return param_info.param == Cluster::FabricKind::kInProc ? "InProc"
                                                             : "Tcp";
    });

}  // namespace
