// The lock-order checker must catch the hazards it exists for — a seeded
// lock-order inversion, a self-relock, a blocking remote call under a lock
// — from a single benign interleaving, and must stay silent for correct
// nesting.
//
// The checker's per-thread edge caches survive reset_for_testing(), so
// every scenario uses fresh lock-class names (never reused across tests).
#include <gtest/gtest.h>

#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/oopp.hpp"
#include "util/checked_mutex.hpp"

using oopp::util::CheckedMutex;
using oopp::util::CheckedSharedMutex;
using oopp::util::CondVar;
namespace lockcheck = oopp::util::lockcheck;

namespace {

// Captures violation reports instead of aborting.  Installed per test;
// the destructor restores the default handler.
class CaptureFailures {
 public:
  CaptureFailures() {
    reports().clear();
    prev_ = lockcheck::set_failure_handler(&record);
  }
  ~CaptureFailures() { lockcheck::set_failure_handler(prev_); }

  static std::vector<std::string>& reports() {
    static std::vector<std::string> r;
    return r;
  }

 private:
  static void record(const std::string& report) {
    reports().push_back(report);
  }
  lockcheck::FailureHandler prev_ = nullptr;
};

bool any_report_contains(const std::string& needle) {
  for (const auto& r : CaptureFailures::reports())
    if (r.find(needle) != std::string::npos) return true;
  return false;
}

TEST(LockCheck, EnabledInThisBuild) {
  ASSERT_TRUE(lockcheck::enabled())
      << "tests must run with OOPP_LOCK_CHECK on (and env != 0)";
}

TEST(LockCheck, CleanNestingIsSilent) {
  CaptureFailures capture;
  CheckedMutex outer("test.clean.outer");
  CheckedMutex inner("test.clean.inner");
  // Consistent outer -> inner nesting from two threads: no violation.
  auto nest = [&] {
    for (int i = 0; i < 100; ++i) {
      std::lock_guard a(outer);
      std::lock_guard b(inner);
    }
  };
  std::thread t(nest);
  nest();
  t.join();
  EXPECT_TRUE(CaptureFailures::reports().empty());
}

// The tentpole scenario: thread 1 takes A then B, thread 2 takes B then A.
// Neither run deadlocks (the acquisitions are serialized), but the order
// graph has the cycle A -> B -> A and the checker must report it.
TEST(LockCheck, SeededLockOrderInversionIsCaught) {
  CaptureFailures capture;
  CheckedMutex a("test.inversion.A");
  CheckedMutex b("test.inversion.B");

  {
    std::lock_guard la(a);
    std::lock_guard lb(b);  // records A -> B
  }
  std::thread t([&] {
    std::lock_guard lb(b);
    std::lock_guard la(a);  // B -> A: closes the cycle
  });
  t.join();

  ASSERT_FALSE(CaptureFailures::reports().empty())
      << "inverted lock order went undetected";
  EXPECT_TRUE(any_report_contains("test.inversion.A"));
  EXPECT_TRUE(any_report_contains("test.inversion.B"));
  EXPECT_TRUE(any_report_contains("cycle"));
}

// A three-lock cycle assembled by three different threads, none of which
// ever holds more than two locks: A -> B, B -> C, then C -> A must fail.
TEST(LockCheck, TransitiveCycleAcrossThreeThreads) {
  CaptureFailures capture;
  CheckedMutex a("test.tri.A");
  CheckedMutex b("test.tri.B");
  CheckedMutex c("test.tri.C");

  std::thread([&] {
    std::lock_guard l1(a);
    std::lock_guard l2(b);
  }).join();
  std::thread([&] {
    std::lock_guard l1(b);
    std::lock_guard l2(c);
  }).join();
  EXPECT_TRUE(CaptureFailures::reports().empty());
  std::thread([&] {
    std::lock_guard l1(c);
    std::lock_guard l2(a);  // C -> A completes A -> B -> C -> A
  }).join();

  ASSERT_FALSE(CaptureFailures::reports().empty());
  EXPECT_TRUE(any_report_contains("test.tri.A"));
  EXPECT_TRUE(any_report_contains("test.tri.C"));
}

TEST(LockCheck, SelfRelockIsCaught) {
  CaptureFailures capture;
  CheckedMutex m("test.relock.M");
  m.lock();
  lockcheck::on_acquire(&m, m.name());  // what a second m.lock() would do
  ASSERT_FALSE(CaptureFailures::reports().empty());
  EXPECT_TRUE(any_report_contains("recursive acquisition"));
  lockcheck::on_release(&m);
  m.unlock();
}

TEST(LockCheck, BlockingRemoteCallUnderLockIsCaught) {
  CaptureFailures capture;
  CheckedMutex m("test.blocking.M");
  {
    std::lock_guard l(m);
    lockcheck::on_blocking_call("test_site");
  }
  ASSERT_FALSE(CaptureFailures::reports().empty());
  EXPECT_TRUE(any_report_contains("test.blocking.M"));
  EXPECT_TRUE(any_report_contains("test_site"));

  // With the lock released the same call site is clean.
  CaptureFailures::reports().clear();
  lockcheck::on_blocking_call("test_site");
  EXPECT_TRUE(CaptureFailures::reports().empty());
}

// A real remote call while holding a checked lock must trip the hook in
// rpc/binding.hpp end-to-end (not just the lockcheck API).
TEST(LockCheck, RealRemoteCallUnderLockIsCaught) {
  oopp::Cluster cluster(2);
  CaptureFailures capture;
  CheckedMutex m("test.rpc_hook.M");
  auto vec = cluster.make_remote<oopp::RemoteVector<double>>(
      1, std::uint64_t{4});
  {
    std::lock_guard l(m);
    (void)vec.call<&oopp::RemoteVector<double>::sum>();
  }
  ASSERT_FALSE(CaptureFailures::reports().empty());
  EXPECT_TRUE(any_report_contains("test.rpc_hook.M"));
  vec.destroy();
}

TEST(LockCheck, SharedMutexParticipatesInOrdering) {
  CaptureFailures capture;
  CheckedSharedMutex s("test.shared.S");
  CheckedMutex x("test.shared.X");

  {
    std::shared_lock ls(s);
    std::lock_guard lx(x);  // S -> X
  }
  std::thread([&] {
    std::lock_guard lx(x);
    std::shared_lock ls(s);  // X -> S: inversion through a shared lock
  }).join();

  ASSERT_FALSE(CaptureFailures::reports().empty());
  EXPECT_TRUE(any_report_contains("test.shared.S"));
}

// CondVar waits release and re-acquire the underlying mutex without
// corrupting the held-lock stack.
TEST(LockCheck, CondVarKeepsHeldStackConsistent) {
  CaptureFailures capture;
  CheckedMutex m("test.condvar.M");
  CondVar cv;
  bool ready = false;

  std::thread producer([&] {
    std::lock_guard l(m);
    ready = true;
    cv.notify_one();
  });
  {
    std::unique_lock l(m);
    cv.wait(l, [&] { return ready; });
    EXPECT_EQ(lockcheck::held_count(), 1u);
  }
  producer.join();
  EXPECT_EQ(lockcheck::held_count(), 0u);
  EXPECT_TRUE(CaptureFailures::reports().empty());
}

TEST(LockCheck, TryLockFailureRollsBackHeldStack) {
  CaptureFailures capture;
  CheckedMutex m("test.trylock.M");
  m.lock();
  std::thread([&] {
    EXPECT_FALSE(m.try_lock());
    EXPECT_EQ(lockcheck::held_count(), 0u);
  }).join();
  m.unlock();
  EXPECT_TRUE(CaptureFailures::reports().empty());
}

// A successful try_lock is an acquisition like any other: the edge it
// records must participate in cycle detection.
TEST(LockCheck, TryLockSuccessParticipatesInOrderGraph) {
  CaptureFailures capture;
  CheckedMutex a("test.trysucc.A");
  CheckedMutex b("test.trysucc.B");
  {
    std::lock_guard la(a);
    ASSERT_TRUE(b.try_lock());  // records A -> B through the try path
    b.unlock();
  }
  std::thread([&] {
    std::lock_guard lb(b);
    std::lock_guard la(a);  // B -> A closes the cycle
  }).join();
  ASSERT_FALSE(CaptureFailures::reports().empty());
  EXPECT_TRUE(any_report_contains("test.trysucc.A"));
  EXPECT_TRUE(any_report_contains("test.trysucc.B"));
}

// A FAILED try_lock rolls the held stack back but the order edge stays
// vetted — deliberately conservative: the code was willing to take B
// under A, so the reverse nesting elsewhere is still a hazard.
TEST(LockCheck, FailedTryLockStillVetsTheEdge) {
  CaptureFailures capture;
  CheckedMutex a("test.tryfail.A");
  CheckedMutex b("test.tryfail.B");

  b.lock();  // make the try_lock below lose the race deterministically
  std::thread([&] {
    std::lock_guard la(a);
    EXPECT_FALSE(b.try_lock());  // A -> B recorded, stack rolled back
    EXPECT_EQ(lockcheck::held_count(), 1u);
  }).join();
  b.unlock();
  EXPECT_TRUE(CaptureFailures::reports().empty());

  std::thread([&] {
    std::lock_guard lb(b);
    std::lock_guard la(a);  // B -> A: cycle against the vetted edge
  }).join();
  ASSERT_FALSE(CaptureFailures::reports().empty());
  EXPECT_TRUE(any_report_contains("test.tryfail.A"));
}

// The shared try paths mirror the exclusive ones: success participates
// in ordering, failure rolls back the held stack.
TEST(LockCheck, TryLockSharedPathsParticipate) {
  CaptureFailures capture;
  CheckedSharedMutex s("test.tryshared.S");
  CheckedMutex x("test.tryshared.X");

  s.lock();  // writer held: the reader's try must fail and roll back
  std::thread([&] {
    EXPECT_FALSE(s.try_lock_shared());
    EXPECT_EQ(lockcheck::held_count(), 0u);
  }).join();
  s.unlock();
  EXPECT_TRUE(CaptureFailures::reports().empty());

  {
    ASSERT_TRUE(s.try_lock_shared());
    std::lock_guard lx(x);  // S -> X through the shared try path
    s.unlock_shared();
  }
  std::thread([&] {
    std::lock_guard lx(x);
    ASSERT_TRUE(s.try_lock_shared());  // X -> S: inversion
    s.unlock_shared();
  }).join();
  ASSERT_FALSE(CaptureFailures::reports().empty());
  EXPECT_TRUE(any_report_contains("test.tryshared.S"));
}

// Taking the same instance exclusively while already holding it shared
// would deadlock for real (no upgrade); the checker calls it out as a
// recursive acquisition.
TEST(LockCheck, SharedThenExclusiveSameInstanceIsCaught) {
  CaptureFailures capture;
  CheckedSharedMutex s("test.upgrade.S");
  s.lock_shared();
  lockcheck::on_acquire(&s, s.name());  // what s.lock() would do
  ASSERT_FALSE(CaptureFailures::reports().empty());
  EXPECT_TRUE(any_report_contains("recursive acquisition"));
  lockcheck::on_release(&s);
  s.unlock_shared();
}

// Two instances of the same lock class may nest (per-object mutexes taken
// in address or container order) — excluded from the order graph.
TEST(LockCheck, SameClassInstancesDoNotFalsePositive) {
  CaptureFailures capture;
  CheckedMutex m1("test.sameclass.M");
  CheckedMutex m2("test.sameclass.M");
  {
    std::lock_guard l1(m1);
    std::lock_guard l2(m2);
  }
  {
    std::lock_guard l2(m2);
    std::lock_guard l1(m1);
  }
  EXPECT_TRUE(CaptureFailures::reports().empty());
}

}  // namespace
