// Distributed lock-order analysis end to end: the held-locks wire
// piggyback (byte-identical framing when disabled, roundtrip when on),
// the RemoteHeldScope dispatch context and cross-node edge store, the
// per-process JSON dump, and the offline cycle detector
// (tools/oopp_graph.py) — including the two-node deadlock cycle that no
// single node's online lockdep can see.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/oopp.hpp"
#include "net/message.hpp"
#include "net/tcp_wire.hpp"
#include "util/checked_mutex.hpp"

using oopp::Cluster;
using oopp::util::CheckedMutex;
namespace net = oopp::net;
namespace wire = oopp::net::wire;
namespace lockcheck = oopp::util::lockcheck;

namespace {

// -- test servant -----------------------------------------------------------

// Shared across driver and servant code: the process hosts every machine,
// so the same two lock instances are visible from both call paths.
CheckedMutex& dist_l1() {
  static CheckedMutex m("test.dist.L1");
  return m;
}
CheckedMutex& dist_l2() {
  static CheckedMutex m("test.dist.L2");
  return m;
}

class DistServant {
 public:
  DistServant() = default;
  int take_l1() {
    std::lock_guard l(dist_l1());
    return 1;
  }
  int take_l2() {
    std::lock_guard l(dist_l2());
    return 2;
  }
};

}  // namespace

template <>
struct oopp::rpc::class_def<DistServant> {
  static std::string name() { return "test.DistServant"; }
  using ctors = ctor_list<ctor<>>;
  template <class B>
  static void bind(B& b) {
    b.template method<&DistServant::take_l1>("take_l1");
    b.template method<&DistServant::take_l2>("take_l2");
  }
};

namespace {

/// Scoped OOPP_DIST_LOCK_CHECK override; restores "off" on exit.
class DistCheckOn {
 public:
  DistCheckOn() { lockcheck::set_distributed_enabled(true); }
  ~DistCheckOn() { lockcheck::set_distributed_enabled(false); }
};

// Captures lockdep reports instead of aborting (same harness as
// test_checked_mutex.cpp).
class CaptureFailures {
 public:
  CaptureFailures() {
    reports().clear();
    prev_ = lockcheck::set_failure_handler(&record);
  }
  ~CaptureFailures() { lockcheck::set_failure_handler(prev_); }

  static std::vector<std::string>& reports() {
    static std::vector<std::string> r;
    return r;
  }

 private:
  static void record(const std::string& report) {
    reports().push_back(report);
  }
  lockcheck::FailureHandler prev_ = nullptr;
};

std::string slurp(const std::filesystem::path& p) {
  std::ifstream in(p);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// -- wire format ------------------------------------------------------------

net::Message req_with_held(std::initializer_list<std::uint32_t> ids) {
  net::LockSet held;
  for (auto id : ids) held.ids[held.count++] = id;
  return net::make_request(0, 1, /*seq=*/42, /*object=*/7, /*method=*/9,
                           net::Buffer(std::vector<std::byte>(16)),
                           /*checksum=*/true, /*trace_id=*/0, /*span_id=*/0,
                           /*attempt=*/0, held);
}

TEST(HeldLocksWire, EmptySetKeepsLegacyLayout) {
  // The interop guarantee: with nothing piggybacked the frame header is
  // byte-for-byte today's fixed layout — same size, no flag bit, and the
  // fixed-prefix decoder consumes it completely.
  auto m = req_with_held({});
  EXPECT_EQ(wire::header_wire_size(m.header), wire::kFrameHeaderSize);
  EXPECT_EQ(m.wire_size(),
            sizeof(net::MessageHeader) - sizeof(net::LockSet) +
                m.payload.size());

  std::uint8_t buf[wire::kMaxFrameHeaderSize];
  ASSERT_EQ(wire::encode_header(m.header, m.payload.size(), buf),
            wire::kFrameHeaderSize);
  EXPECT_EQ(buf[0] & wire::kHeldLocksFlag, 0);

  net::MessageHeader h;
  std::uint64_t payload_len = 0;
  EXPECT_FALSE(wire::decode_fixed_header(buf, h, payload_len));
  EXPECT_EQ(payload_len, m.payload.size());
  EXPECT_EQ(h.kind, net::MsgKind::kRequest);
  EXPECT_EQ(h.seq, m.header.seq);
  EXPECT_TRUE(h.held.empty());
}

TEST(HeldLocksWire, HeldSetRoundTripsThroughCodec) {
  auto m = req_with_held({0xdeadbeefu, 17u, 0xffffffffu});
  EXPECT_EQ(wire::header_wire_size(m.header),
            wire::kFrameHeaderSize + 1 + 4 * 3);
  EXPECT_EQ(m.wire_size(),
            sizeof(net::MessageHeader) - sizeof(net::LockSet) +
                m.payload.size() + 1 + 4 * 3);

  std::uint8_t buf[wire::kMaxFrameHeaderSize];
  const std::size_t hlen =
      wire::encode_header(m.header, m.payload.size(), buf);
  ASSERT_EQ(hlen, wire::kFrameHeaderSize + 13);
  EXPECT_NE(buf[0] & wire::kHeldLocksFlag, 0);

  net::MessageHeader h;
  std::uint64_t payload_len = 0;
  ASSERT_EQ(wire::decode_header(buf, hlen, h, payload_len), hlen);
  EXPECT_EQ(h.kind, net::MsgKind::kRequest);  // flag masked back out
  ASSERT_EQ(h.held.count, 3);
  EXPECT_EQ(h.held.ids[0], 0xdeadbeefu);
  EXPECT_EQ(h.held.ids[1], 17u);
  EXPECT_EQ(h.held.ids[2], 0xffffffffu);
}

TEST(HeldLocksWire, MalformedExtensionIsRejected) {
  auto m = req_with_held({1, 2});
  std::uint8_t buf[wire::kMaxFrameHeaderSize];
  const std::size_t hlen =
      wire::encode_header(m.header, m.payload.size(), buf);

  // Truncated extension: the decoder must not read past `avail`.
  net::MessageHeader h;
  std::uint64_t payload_len = 0;
  EXPECT_EQ(wire::decode_header(buf, hlen - 1, h, payload_len), 0u);

  // Flag set but a count the header can never carry.
  buf[wire::kFrameHeaderSize] = 9;  // > kMaxHeldClasses
  EXPECT_EQ(wire::decode_header(buf, sizeof(buf), h, payload_len), 0u);
  buf[wire::kFrameHeaderSize] = 0;  // flagged frames must carry >= 1
  EXPECT_EQ(wire::decode_header(buf, sizeof(buf), h, payload_len), 0u);
}

struct SocketPair {
  int a = -1, b = -1;
  SocketPair() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
  }
  ~SocketPair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
};

TEST(HeldLocksWire, RoundTripsThroughSocketAndFrameReader) {
  SocketPair sp;
  ASSERT_TRUE(wire::send_framev(sp.a, req_with_held({5, 6})));
  net::Message got;
  ASSERT_TRUE(wire::recv_frame(sp.b, got));
  ASSERT_EQ(got.header.held.count, 2);
  EXPECT_EQ(got.header.held.ids[0], 5u);
  EXPECT_EQ(got.header.held.ids[1], 6u);

  // A batch mixing flagged and plain frames slices back correctly.
  std::vector<net::Message> frames{req_with_held({0xabcdu}),
                                   req_with_held({}),
                                   req_with_held({1, 2, 3, 4})};
  ASSERT_TRUE(wire::send_batch(sp.a, frames.data(), frames.size()));
  wire::FrameReader reader(sp.b);
  std::vector<net::Message> out;
  ASSERT_TRUE(reader.next_batch(out));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].header.held.count, 1);
  EXPECT_EQ(out[0].header.held.ids[0], 0xabcdu);
  EXPECT_TRUE(out[1].header.held.empty());
  EXPECT_EQ(out[2].header.held.count, 4);
}

// -- cross-edge store -------------------------------------------------------

TEST(DistLockCheck, HeldClassHashesReflectHeldStack) {
  DistCheckOn on;
  CheckedMutex a("test.piggyback.A");
  CheckedMutex b("test.piggyback.B");
  std::uint32_t out[lockcheck::kMaxHeldClasses];
  EXPECT_EQ(lockcheck::held_class_hashes(out, std::size(out)), 0u);
  {
    std::lock_guard la(a);
    std::lock_guard lb(b);
    ASSERT_EQ(lockcheck::held_class_hashes(out, std::size(out)), 2u);
    EXPECT_EQ(out[0], lockcheck::class_hash("test.piggyback.A"));
    EXPECT_EQ(out[1], lockcheck::class_hash("test.piggyback.B"));
  }
  EXPECT_EQ(lockcheck::held_class_hashes(out, std::size(out)), 0u);
}

TEST(DistLockCheck, RemoteHeldScopeRecordsCrossEdge) {
  DistCheckOn on;
  CaptureFailures capture;
  const std::uint32_t remote = lockcheck::class_hash("test.cross.K");
  {
    lockcheck::RemoteHeldScope scope(&remote, 1, /*peer=*/3, /*node=*/1,
                                     "test_method");
    CheckedMutex local("test.cross.L");
    std::lock_guard l(local);
  }
  const std::string json = lockcheck::dump_graph_json(1);
  EXPECT_NE(json.find("\"to\": \"test.cross.L\""), std::string::npos);
  EXPECT_NE(json.find("\"method\": \"test_method\""), std::string::npos);
  EXPECT_NE(json.find("\"peer\": 3"), std::string::npos);
  // The cross edge is offline-only evidence: the online checker stays
  // silent (a remote holder is not a local cycle).
  EXPECT_TRUE(CaptureFailures::reports().empty());
}

TEST(DistLockCheck, DisabledRecordsNothing) {
  lockcheck::set_distributed_enabled(false);
  const std::uint32_t remote = lockcheck::class_hash("test.crossoff.K");
  {
    lockcheck::RemoteHeldScope scope(&remote, 1, 3, 1, "method_off");
    CheckedMutex local("test.crossoff.L");
    std::lock_guard l(local);
  }
  EXPECT_EQ(lockcheck::dump_graph_json(1).find("method_off"),
            std::string::npos);
}

TEST(DistLockCheck, SameClassAcrossNodesIsNotAnEdge) {
  // Two instances of one class on two machines carry no ordering
  // information — the same exclusion the local checker applies.
  DistCheckOn on;
  const std::uint32_t remote = lockcheck::class_hash("test.samecross.M");
  {
    lockcheck::RemoteHeldScope scope(&remote, 1, 2, 1, "same_class_m");
    CheckedMutex local("test.samecross.M");
    std::lock_guard l(local);
  }
  EXPECT_EQ(lockcheck::dump_graph_json(1).find("same_class_m"),
            std::string::npos);
}

// -- the acceptance scenario ------------------------------------------------

// Machine A holds L1 while calling into B; B's handler takes L2.  The
// reverse path holds L2 while calling back into A, whose handler takes
// L1.  Each process's own order graph sees only one edge — no local
// report — but the merged graph has the cycle L1 -> L2 -> L1 and
// oopp_graph.py --check must find it, with both call paths.
TEST(DistLockCheck, TwoNodeCycleFoundOnlyByMergedGraph) {
  lockcheck::reset_for_testing();
  DistCheckOn on;
  CaptureFailures capture;

  Cluster::Options opts;
  opts.machines = 2;
  opts.fabric = Cluster::FabricKind::kTcp;
  Cluster cluster(opts);
  auto on_b = cluster.make_remote<DistServant>(1);
  auto on_a = cluster.make_remote<DistServant>(0);

  {
    // Path 1 (driver = machine 0): hold L1, call B, B takes L2.  The
    // held set is captured when the request is issued; releasing before
    // collecting keeps the online blocking-call check quiet.
    std::unique_lock l1(dist_l1());
    auto f = on_b.async<&DistServant::take_l2>();
    l1.unlock();
    EXPECT_EQ(f.get(), 2);
  }
  {
    // Path 2 (machine 1): hold L2, call back into A, A takes L1.
    auto ctx = cluster.use(1);
    std::unique_lock l2(dist_l2());
    auto f = on_a.async<&DistServant::take_l1>();
    l2.unlock();
    EXPECT_EQ(f.get(), 1);
  }

  // No single node's lockdep saw a cycle.
  EXPECT_TRUE(CaptureFailures::reports().empty());
  // The Cluster telemetry hook counted the recorded cross edges.
  EXPECT_NE(cluster.metrics_report().find("cross_edges_recorded"),
            std::string::npos);

  const auto dir = std::filesystem::temp_directory_path() /
                   ("oopp-lockgraph-test-" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  ASSERT_EQ(cluster.dump_lockgraph(dir), 1u);

  const auto out = dir / "check_output.txt";
  const std::string base = "python3 " OOPP_GRAPH_TOOL " --check ";
  // Local edges alone: clean (exactly what each node's checker saw).
  EXPECT_EQ(std::system((base + "--local-only " + dir.string() + " > " +
                         (dir / "local.txt").string() + " 2>&1")
                            .c_str()),
            0);
  // The merged graph must fail the gate and name both classes, the rpc
  // methods, and the cross-node provenance of each edge.
  const int rc = std::system(
      (base + dir.string() + " > " + out.string() + " 2>&1").c_str());
  ASSERT_TRUE(WIFEXITED(rc));
  EXPECT_EQ(WEXITSTATUS(rc), 1) << slurp(out);
  const std::string report = slurp(out);
  EXPECT_NE(report.find("cycle"), std::string::npos) << report;
  EXPECT_NE(report.find("test.dist.L1"), std::string::npos) << report;
  EXPECT_NE(report.find("test.dist.L2"), std::string::npos) << report;
  EXPECT_NE(report.find("take_l1"), std::string::npos) << report;
  EXPECT_NE(report.find("take_l2"), std::string::npos) << report;
  EXPECT_NE(report.find("cross-node"), std::string::npos) << report;

  on_b.destroy();
  on_a.destroy();
  std::filesystem::remove_all(dir);
}

}  // namespace
