// Zero-copy buffers and per-peer send coalescing: net::Buffer semantics,
// the batch wire codec, both flush triggers on a live TcpFabric, and the
// composition with checksums (FaultyFabric) and retry/dedup — batching
// must never weaken the PR 3 fault-tolerance invariants.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/oopp.hpp"
#include "net/batcher.hpp"
#include "net/buffer.hpp"
#include "net/faulty_fabric.hpp"
#include "net/tcp_fabric.hpp"
#include "net/tcp_wire.hpp"
#include "rpc/call_policy.hpp"

namespace net = oopp::net;
namespace wire = oopp::net::wire;
using namespace std::chrono_literals;

namespace {

std::vector<std::byte> pattern(std::size_t n, std::uint8_t salt = 0) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<std::byte>((i + salt) & 0xff);
  return v;
}

net::Message req(net::SeqNum seq, std::size_t payload,
                 std::uint8_t salt = 0) {
  return net::make_request(0, 1, seq, /*object=*/7, /*method=*/9,
                           pattern(payload, salt), /*checksum=*/true);
}

// -- net::Buffer ------------------------------------------------------------

TEST(Buffer, AdoptsVectorWithoutReshaping) {
  auto v = pattern(100);
  const auto ref = v;
  net::Buffer b(std::move(v));
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b.slice_count(), 1u);
  EXPECT_EQ(b.to_vector(), ref);
  // Single-slice bytes() points straight at the adopted storage.
  EXPECT_EQ(b.bytes().data(), b.slice(0).data());
}

TEST(Buffer, ViewSlicesSharedStoreZeroCopy) {
  auto store =
      std::make_shared<const std::vector<std::byte>>(pattern(64));
  auto b = net::Buffer::view(store, 16, 32);
  EXPECT_EQ(b.size(), 32u);
  EXPECT_EQ(b.bytes().data(), store->data() + 16);  // no copy happened
  for (std::size_t i = 0; i < 32; ++i)
    EXPECT_EQ(b[i], (*store)[16 + i]);
}

TEST(Buffer, AppendConcatenatesAndFlattensLazily) {
  net::Buffer b(pattern(10, 1));
  b.append(net::Buffer(pattern(10, 2)));
  EXPECT_EQ(b.slice_count(), 2u);
  EXPECT_EQ(b.size(), 20u);
  auto expect = pattern(10, 1);
  auto tail = pattern(10, 2);
  expect.insert(expect.end(), tail.begin(), tail.end());
  EXPECT_EQ(b.to_vector(), expect);
  // Checksum over slices equals checksum over the flattened bytes.
  EXPECT_EQ(b.checksum(), net::Buffer(std::move(expect)).checksum());
}

TEST(Buffer, MutateByteIsCopyOnWrite) {
  net::Buffer a(pattern(32));
  net::Buffer b = a;  // shares the slice
  b.mutate_byte(5, std::byte{0x40});
  EXPECT_EQ(a[5], pattern(32)[5]) << "mutation leaked into a sharer";
  EXPECT_EQ(b[5], pattern(32)[5] ^ std::byte{0x40});
  EXPECT_NE(a.checksum(), b.checksum());
}

// -- wire codec -------------------------------------------------------------

struct SocketPair {
  int a = -1, b = -1;
  SocketPair() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
  }
  ~SocketPair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
};

std::vector<std::byte> read_n(int fd, std::size_t n) {
  std::vector<std::byte> v(n);
  EXPECT_TRUE(wire::read_all(fd, v.data(), n));
  return v;
}

TEST(WireCodec, SendFramevMatchesSendFrameByteForByte) {
  auto m = req(42, 300);
  const std::size_t wire_bytes = wire::kFrameHeaderSize + m.payload.size();

  SocketPair classic, gathered;
  ASSERT_TRUE(wire::send_frame(classic.a, m));
  ASSERT_TRUE(wire::send_framev(gathered.a, m));
  EXPECT_EQ(read_n(classic.b, wire_bytes), read_n(gathered.b, wire_bytes));
}

TEST(WireCodec, SendFramevHandlesMultiSlicePayloads) {
  auto m = req(1, 0);
  net::Buffer p(pattern(50, 1));
  p.append(net::Buffer(pattern(50, 2)));
  p.append(net::Buffer(pattern(50, 3)));
  m.payload = p;

  SocketPair sp;
  ASSERT_TRUE(wire::send_framev(sp.a, m));
  net::Message got;
  ASSERT_TRUE(wire::recv_frame(sp.b, got));
  EXPECT_EQ(got.payload.to_vector(), p.to_vector());
}

TEST(WireCodec, BatchRoundTripsThroughFrameReader) {
  std::vector<net::Message> frames;
  for (int i = 0; i < 5; ++i)
    frames.push_back(req(static_cast<net::SeqNum>(i), 40 + 10 * i,
                         static_cast<std::uint8_t>(i)));

  SocketPair sp;
  ASSERT_TRUE(wire::send_batch(sp.a, frames.data(), frames.size()));
  wire::FrameReader reader(sp.b);
  std::vector<net::Message> got;
  ASSERT_TRUE(reader.next_batch(got));
  ASSERT_EQ(got.size(), frames.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].header.seq, frames[i].header.seq);
    EXPECT_EQ(got[i].header.payload_crc, frames[i].header.payload_crc);
    EXPECT_EQ(got[i].payload.to_vector(), frames[i].payload.to_vector());
  }
}

TEST(WireCodec, FrameReaderAcceptsMixedPlainAndBatchUnits) {
  SocketPair sp;
  auto lone = req(100, 64);
  ASSERT_TRUE(wire::send_framev(sp.a, lone));
  std::vector<net::Message> batch{req(101, 16), req(102, 16)};
  ASSERT_TRUE(wire::send_batch(sp.a, batch.data(), batch.size()));
  ASSERT_TRUE(wire::send_framev(sp.a, req(103, 8)));

  wire::FrameReader reader(sp.b);
  net::Message m;
  for (net::SeqNum want = 100; want <= 103; ++want) {
    ASSERT_TRUE(reader.next(m));
    EXPECT_EQ(m.header.seq, want);
  }
}

TEST(WireCodec, MalformedBatchHeaderIsRejected) {
  std::uint8_t hdr[wire::kBatchHeaderSize];
  wire::encode_batch_header(3, 3 * wire::kFrameHeaderSize, hdr);
  std::uint32_t count = 0;
  std::uint64_t len = 0;
  EXPECT_TRUE(wire::decode_batch_header(hdr, count, len));
  EXPECT_EQ(count, 3u);

  auto bad = [&](auto mutate) {
    std::uint8_t h[wire::kBatchHeaderSize];
    std::memcpy(h, hdr, sizeof(h));
    mutate(h);
    std::uint32_t c = 0;
    std::uint64_t l = 0;
    return wire::decode_batch_header(h, c, l);
  };
  EXPECT_FALSE(bad([](std::uint8_t* h) { h[0] = 0x00; }));  // wrong magic
  EXPECT_FALSE(bad([](std::uint8_t* h) { h[1] = 9; }));     // wrong version
  EXPECT_FALSE(bad([](std::uint8_t* h) {                    // zero count
    std::uint32_t z = 0;
    std::memcpy(h + 4, &z, 4);
  }));
  EXPECT_FALSE(bad([](std::uint8_t* h) {  // payload shorter than headers
    std::uint64_t z = wire::kFrameHeaderSize;
    std::memcpy(h + 8, &z, 8);
  }));
}

// -- TcpFabric flush behaviour ----------------------------------------------

struct FabricPair {
  net::TcpFabric fabric;
  net::Inbox a, b;
  explicit FabricPair(net::BatchOptions batch)
      : fabric(2, net::FabricOptions{.batch = batch}) {
    fabric.attach(0, &a);
    fabric.attach(1, &b);
  }
  ~FabricPair() { fabric.shutdown(); }
};

TEST(TcpBatching, FlushOnFrameCountDespiteFarDeadline) {
  const auto size_flushes_before =
      net::batch_metrics().flush_size.value();
  // A deadline no test should ever hit: only the size trigger can flush.
  FabricPair fp({.enabled = true, .max_frames = 4, .max_delay = 10s});
  for (int i = 0; i < 4; ++i)
    fp.fabric.send(req(static_cast<net::SeqNum>(i), 32));
  for (net::SeqNum want = 0; want < 4; ++want)
    EXPECT_EQ(fp.b.pop()->header.seq, want);
  EXPECT_GT(net::batch_metrics().flush_size.value(), size_flushes_before);
}

TEST(TcpBatching, FlushOnByteThresholdDespiteFarDeadline) {
  FabricPair fp({.enabled = true,
                 .max_bytes = 2 * 1024,
                 .max_frames = 1000,
                 .max_delay = 10s});
  // Two 1.5 KiB frames cross the 2 KiB threshold.
  fp.fabric.send(req(0, 1536));
  fp.fabric.send(req(1, 1536));
  EXPECT_EQ(fp.b.pop()->header.seq, 0u);
  EXPECT_EQ(fp.b.pop()->header.seq, 1u);
}

TEST(TcpBatching, FlushOnDeadlineForLoneSmallFrame) {
  const auto deadline_flushes_before =
      net::batch_metrics().flush_deadline.value();
  FabricPair fp({.enabled = true, .max_frames = 1000, .max_delay = 2ms});
  const auto t0 = oopp::steady_clock::now();
  fp.fabric.send(req(7, 16));  // far below every size threshold
  auto got = fp.b.pop();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->header.seq, 7u);
  // Arrived via the deadline flusher, not a size trip.
  EXPECT_GE(oopp::steady_clock::now() - t0, 1ms);
  EXPECT_GT(net::batch_metrics().flush_deadline.value(),
            deadline_flushes_before);
}

TEST(TcpBatching, MixedRequestsAndResponsesCoalesceInOrder) {
  FabricPair fp({.enabled = true, .max_frames = 6, .max_delay = 10s});
  for (net::SeqNum s = 0; s < 6; ++s) {
    if (s % 2 == 0) {
      fp.fabric.send(req(s, 24));
    } else {
      auto r = req(s, 24);
      auto resp = net::make_response(r.header, net::CallStatus::kOk,
                                     pattern(24), /*checksum=*/true);
      // make_response replies to the request's origin; re-aim it at 1.
      std::swap(resp.header.src, resp.header.dst);  // oopp-lint: allow(raw-message-header)
      resp.header.seq = s;                          // oopp-lint: allow(raw-message-header)
      fp.fabric.send(std::move(resp));
    }
  }
  for (net::SeqNum want = 0; want < 6; ++want) {
    auto got = fp.b.pop();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->header.seq, want);
    EXPECT_EQ(got->header.kind, want % 2 == 0 ? net::MsgKind::kRequest
                                              : net::MsgKind::kResponse);
  }
}

TEST(TcpBatching, RuntimeToggleDrainsAndKeepsDelivering) {
  FabricPair fp({.enabled = true, .max_frames = 1000, .max_delay = 10s});
  fp.fabric.send(req(1, 16));  // parked in the queue (no trigger near)
  // Turning batching off must drain the parked frame on the next send.
  fp.fabric.reconfigure(net::FabricOptions{.batch = {.enabled = false}});
  fp.fabric.send(req(2, 16));
  EXPECT_EQ(fp.b.pop()->header.seq, 1u);
  EXPECT_EQ(fp.b.pop()->header.seq, 2u);

  fp.fabric.reconfigure(
      net::FabricOptions{.batch = {.enabled = true, .max_frames = 2}});
  fp.fabric.send(req(3, 16));
  fp.fabric.send(req(4, 16));
  EXPECT_EQ(fp.b.pop()->header.seq, 3u);
  EXPECT_EQ(fp.b.pop()->header.seq, 4u);
}

TEST(TcpBatching, ShutdownDrainsParkedFramesWithoutHanging) {
  // Delivery after shutdown is inherently racy against reader teardown;
  // what is guaranteed is that shutdown *attempts* the drain (the bytes
  // hit the socket) and never hangs on a parked queue.
  const auto drains_before = net::batch_metrics().flush_drain.value();
  {
    net::TcpFabric fabric(2, net::FabricOptions{.batch = {.enabled = true,
                                                          .max_frames = 1000,
                                                          .max_delay = 10s}});
    net::Inbox a, b;
    fabric.attach(0, &a);
    fabric.attach(1, &b);
    fabric.send(req(9, 16));
    fabric.shutdown();
  }
  EXPECT_GT(net::batch_metrics().flush_drain.value(), drains_before);
}

}  // namespace

// -- end-to-end: batching composed with checksums and retry/dedup -----------

namespace {

class Counter {
 public:
  int bump() { return ++n_; }
  int count() const { return n_; }
  std::vector<double> echo(const std::vector<double>& v) { return v; }

 private:
  int n_ = 0;
};

}  // namespace

template <>
struct oopp::rpc::class_def<Counter> {
  static std::string name() { return "batch.Counter"; }
  using ctors = ctor_list<ctor<>>;
  template <class B>
  static void bind(B& b) {
    b.template method<&Counter::bump>("bump");
    b.template method<&Counter::count>("count");
    b.template method<&Counter::echo>("echo");
  }
};

namespace {

/// A 2-machine cluster on a real batching TcpFabric, optionally wrapped
/// in a FaultyFabric.  max_delay is kept tiny so sequential round trips
/// stay fast.
struct BatchedCluster {
  net::FaultyFabric* fabric = nullptr;
  std::unique_ptr<oopp::Cluster> cluster;

  explicit BatchedCluster(net::FaultyFabric::Faults faults = {}) {
    oopp::Cluster::Options opts;
    opts.machines = 2;
    opts.node.checksums = true;
    opts.fabric_factory = [&](std::size_t machines) {
      auto tcp = std::make_unique<net::TcpFabric>(
          machines,
          net::FabricOptions{.batch = {.enabled = true, .max_delay = 50us}});
      auto faulty =
          std::make_unique<net::FaultyFabric>(std::move(tcp), faults);
      fabric = faulty.get();
      return faulty;
    };
    cluster = std::make_unique<oopp::Cluster>(opts);
  }
};

TEST(BatchedCluster, RemoteCallsWorkOverBatchingFabric) {
  BatchedCluster bc;
  auto c = bc.cluster->make_remote<Counter>(1);
  for (int i = 1; i <= 20; ++i) EXPECT_EQ(c.call<&Counter::bump>(), i);
  std::vector<double> v{1.5, 2.5, 3.5};
  EXPECT_EQ(c.call<&Counter::echo>(v), v);
}

TEST(BatchedCluster, AsyncBurstCoalescesAndCompletes) {
  BatchedCluster bc;
  auto c = bc.cluster->make_remote<Counter>(1);
  const auto frames_before = net::batch_metrics().frames_batched.value();
  std::vector<oopp::Future<int>> futs;
  futs.reserve(200);
  for (int i = 0; i < 200; ++i) futs.push_back(c.async<&Counter::bump>());
  int last = 0;
  for (auto& f : futs) last = std::max(last, f.get_for(10s));
  EXPECT_EQ(last, 200);  // FIFO servant order survived batching
  EXPECT_GT(net::batch_metrics().frames_batched.value(), frames_before)
      << "a 200-call async burst never produced a single multi-frame batch";
}

TEST(BatchedCluster, PerSubFrameChecksumCatchesCorruptionInsideBatches) {
  BatchedCluster bc;
  auto c = bc.cluster->make_remote<Counter>(1);
  bc.fabric->set_faults({.corrupt_probability = 0.5, .seed = 7});

  std::vector<double> v(64);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = double(i) * 0.5;
  int ok = 0, bad = 0;
  for (int i = 0; i < 200; ++i) {
    try {
      ASSERT_EQ(c.call<&Counter::echo>(v), v);
      ++ok;
    } catch (const oopp::rpc::BadFrame&) {
      ++bad;
    }
  }
  EXPECT_GT(ok, 0);
  EXPECT_GT(bad, 0);
  EXPECT_GT(bc.fabric->corrupted(), 0u);
}

TEST(BatchedCluster, RetryAndDedupKeepExactlyOnceAtFivePercentLoss) {
  BatchedCluster bc;
  oopp::rpc::CallPolicy p = oopp::rpc::resilient_policy(100ms, 8);
  p.backoff_initial = 1ms;
  p.backoff_max = 10ms;
  auto c = bc.cluster->make_remote<Counter>(1).with_policy(p);
  bc.fabric->set_faults({.drop_probability = 0.05, .seed = 23});

  for (int i = 0; i < 1000; ++i)
    ASSERT_NO_THROW((void)c.call<&Counter::bump>()) << "call " << i;
  EXPECT_GT(bc.fabric->dropped(), 0u) << "fault injection never fired";

  bc.fabric->set_faults({});
  EXPECT_EQ(c.call<&Counter::count>(), 1000);  // exactly once each
}

}  // namespace
