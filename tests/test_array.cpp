// Distributed Array tests: Domain algebra, PageMap layouts, and the Array
// class itself — read/write/sum over aligned and unaligned domains, both
// I/O modes, multiple client processes, and persistence.  Includes
// property tests comparing the distributed array against an in-memory
// reference model under random domain operations.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <filesystem>
#include <numeric>
#include <set>
#include <thread>

#include "array/array.hpp"
#include "array/block_storage.hpp"
#include "array/copy.hpp"
#include "array/domain.hpp"
#include "array/page_map.hpp"
#include "core/oopp.hpp"
#include "telemetry/metrics.hpp"
#include "util/prng.hpp"

using oopp::Cluster;
using oopp::Extents3;
using oopp::index_t;
using oopp::remote_ptr;
namespace arr = oopp::array;
namespace fs = std::filesystem;

namespace {

class TempDir {
 public:
  TempDir() {
    dir_ = fs::temp_directory_path() /
           ("oopp-arr-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter_++));
    fs::create_directories(dir_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (dir_ / name).string();
  }

 private:
  static inline int counter_ = 0;
  fs::path dir_;
};

// ---------------------------------------------------------------------------
// Domain
// ---------------------------------------------------------------------------

TEST(Domain, BasicProperties) {
  arr::Domain d(1, 4, 0, 2, 5, 10);
  EXPECT_EQ(d.extent(0), 3);
  EXPECT_EQ(d.extent(1), 2);
  EXPECT_EQ(d.extent(2), 5);
  EXPECT_EQ(d.volume(), 30);
  EXPECT_FALSE(d.empty());
  EXPECT_TRUE(d.contains(1, 0, 5));
  EXPECT_TRUE(d.contains(3, 1, 9));
  EXPECT_FALSE(d.contains(4, 0, 5));
  EXPECT_FALSE(d.contains(1, 0, 10));
}

TEST(Domain, EmptyAndWhole) {
  arr::Domain e;
  EXPECT_TRUE(e.empty());
  auto w = arr::Domain::whole({4, 5, 6});
  EXPECT_EQ(w.volume(), 120);
  EXPECT_TRUE(w.contains(e));
}

TEST(Domain, InvalidBoundsThrow) {
  EXPECT_THROW(arr::Domain(3, 2, 0, 1, 0, 1), oopp::check_error);
}

TEST(Domain, Intersection) {
  arr::Domain a(0, 4, 0, 4, 0, 4);
  arr::Domain b(2, 6, 2, 6, 2, 6);
  auto i = a.intersect(b);
  EXPECT_EQ(i, arr::Domain(2, 4, 2, 4, 2, 4));
  arr::Domain far(10, 12, 0, 4, 0, 4);
  EXPECT_TRUE(a.intersect(far).empty());
  EXPECT_EQ(a.intersect(a), a);
}

TEST(Domain, LocalOffsetRowMajor) {
  arr::Domain d(2, 4, 3, 6, 1, 5);  // extents 2 x 3 x 4
  EXPECT_EQ(d.local_offset(2, 3, 1), 0);
  EXPECT_EQ(d.local_offset(2, 3, 2), 1);
  EXPECT_EQ(d.local_offset(2, 4, 1), 4);
  EXPECT_EQ(d.local_offset(3, 5, 4), 23);
}

TEST(Domain, SerializationRoundTrip) {
  arr::Domain d(1, 2, 3, 4, 5, 6);
  auto bytes = oopp::serial::to_bytes(d);
  EXPECT_EQ(oopp::serial::from_bytes<arr::Domain>(bytes), d);
}

// ---------------------------------------------------------------------------
// PageMap
// ---------------------------------------------------------------------------

TEST(PageMap, RoundRobinSpreadsAdjacentPages) {
  arr::RoundRobinPageMap map({2, 2, 2}, 4);
  std::set<std::int32_t> devices;
  for (index_t p = 0; p < 8; ++p) {
    auto [i1, i2, i3] = oopp::delinearize({2, 2, 2}, p);
    devices.insert(map.physical_page_address(i1, i2, i3).device_id);
  }
  EXPECT_EQ(devices.size(), 4u);
}

TEST(PageMap, BlockedKeepsRunsTogether) {
  arr::BlockedPageMap map({4, 2, 1}, 2);  // 8 pages, 2 devices, chunk 4
  for (index_t p = 0; p < 8; ++p) {
    auto [i1, i2, i3] = oopp::delinearize({4, 2, 1}, p);
    const auto a = map.physical_page_address(i1, i2, i3);
    EXPECT_EQ(a.device_id, p / 4);
    EXPECT_EQ(a.index, p % 4);
  }
}

TEST(PageMap, SingleDevice) {
  arr::SingleDevicePageMap map({3, 3, 3});
  for (index_t p = 0; p < 27; ++p) {
    auto [i1, i2, i3] = oopp::delinearize({3, 3, 3}, p);
    const auto a = map.physical_page_address(i1, i2, i3);
    EXPECT_EQ(a.device_id, 0);
    EXPECT_EQ(a.index, p);
  }
}

/// Every built-in map must be a bijection from the page grid into
/// device slots — no two logical pages may share a physical slot.
class PageMapBijection
    : public ::testing::TestWithParam<std::tuple<arr::PageMapKind, int>> {};

TEST_P(PageMapBijection, NoCollisionsAndInRange) {
  const auto [kind, devices] = GetParam();
  const Extents3 grid{3, 4, 5};
  const auto pages = grid.volume();
  const auto per_device = oopp::ceil_div(pages, devices);
  auto map = arr::PageMapSpec{kind}.instantiate(grid, devices);
  std::set<std::pair<std::int32_t, std::int32_t>> seen;
  for (index_t p = 0; p < pages; ++p) {
    auto [i1, i2, i3] = oopp::delinearize(grid, p);
    const auto a = map->physical_page_address(i1, i2, i3);
    EXPECT_GE(a.device_id, 0);
    if (kind != arr::PageMapKind::kSingleDevice) {
      EXPECT_LT(a.device_id, devices);
    }
    EXPECT_GE(a.index, 0);
    if (kind != arr::PageMapKind::kSingleDevice) {
      EXPECT_LE(a.index, per_device);
    }
    EXPECT_TRUE(seen.insert({a.device_id, a.index}).second)
        << "collision at logical page " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, PageMapBijection,
    ::testing::Combine(::testing::Values(arr::PageMapKind::kSingleDevice,
                                         arr::PageMapKind::kRoundRobin,
                                         arr::PageMapKind::kBlocked,
                                         arr::PageMapKind::kBlockCyclic),
                       ::testing::Values(1, 2, 3, 7, 16)));

TEST(PageMap, BlockCyclicDealsBlocksRoundRobin) {
  // 10 pages, 2 devices, blocks of 3: blocks 0,2 -> dev 0; 1,3 -> dev 1.
  arr::BlockCyclicPageMap map({10, 1, 1}, 2, 3);
  const std::array<std::pair<int, int>, 10> expect{{{0, 0},
                                                    {0, 1},
                                                    {0, 2},
                                                    {1, 0},
                                                    {1, 1},
                                                    {1, 2},
                                                    {0, 3},
                                                    {0, 4},
                                                    {0, 5},
                                                    {1, 3}}};
  for (index_t p = 0; p < 10; ++p) {
    const auto a = map.physical_page_address(p, 0, 0);
    EXPECT_EQ(a.device_id, expect[static_cast<std::size_t>(p)].first) << p;
    EXPECT_EQ(a.index, expect[static_cast<std::size_t>(p)].second) << p;
  }
}

TEST(PageMap, BlockCyclicBijectionWithWideBlocks) {
  const Extents3 grid{3, 4, 5};  // 60 pages
  for (const std::int32_t block : {2, 4, 7}) {
    for (const std::int32_t devices : {2, 3, 16}) {
      const arr::PageMapSpec spec{arr::PageMapKind::kBlockCyclic, block};
      auto map = spec.instantiate(grid, devices);
      std::set<std::pair<std::int32_t, std::int32_t>> seen;
      for (index_t p = 0; p < grid.volume(); ++p) {
        auto [i1, i2, i3] = oopp::delinearize(grid, p);
        const auto a = map->physical_page_address(i1, i2, i3);
        EXPECT_GE(a.device_id, 0);
        EXPECT_LT(a.device_id, devices);
        EXPECT_GE(a.index, 0);
        EXPECT_LT(a.index, spec.pages_on_device(grid, devices, a.device_id));
        EXPECT_TRUE(seen.insert({a.device_id, a.index}).second)
            << "collision at page " << p << " (block " << block << ", D "
            << devices << ")";
      }
    }
  }
}

TEST(PageMap, PagesOnDeviceMatchesActualPlacement) {
  const Extents3 grid{3, 4, 5};  // 60 pages
  const std::array<arr::PageMapSpec, 4> specs{
      arr::PageMapSpec{arr::PageMapKind::kSingleDevice},
      arr::PageMapSpec{arr::PageMapKind::kRoundRobin},
      arr::PageMapSpec{arr::PageMapKind::kBlocked},
      arr::PageMapSpec{arr::PageMapKind::kBlockCyclic, 4}};
  for (const auto& spec : specs) {
    for (const std::int32_t devices : {1, 2, 3, 7, 16, 100}) {
      auto map = spec.instantiate(grid, devices);
      std::vector<index_t> count(100, 0);
      for (index_t p = 0; p < grid.volume(); ++p) {
        auto [i1, i2, i3] = oopp::delinearize(grid, p);
        ++count[static_cast<std::size_t>(
            map->physical_page_address(i1, i2, i3).device_id)];
      }
      for (std::int32_t d = 0; d < devices; ++d)
        EXPECT_EQ(spec.pages_on_device(grid, devices, d),
                  count[static_cast<std::size_t>(d)])
            << spec.name() << " D=" << devices << " d=" << d;
    }
  }
}

TEST(PageMap, DegenerateSpecsThrowTypedErrors) {
  const arr::PageMapSpec rr{arr::PageMapKind::kRoundRobin};
  // Zero-volume page grid.
  EXPECT_THROW((void)rr.instantiate({0, 2, 2}, 2), oopp::Error);
  // devices <= 0 reaching a spec (e.g. via a hand-built remote argument).
  EXPECT_THROW((void)rr.instantiate({2, 2, 2}, 0), oopp::Error);
  EXPECT_THROW((void)rr.instantiate({2, 2, 2}, -3), oopp::Error);
  EXPECT_THROW((void)rr.pages_per_device({2, 2, 2}, 0), oopp::Error);
  EXPECT_THROW((void)rr.pages_on_device({2, 2, 2}, 0, 0), oopp::Error);
  // Non-positive block length for the block-cyclic layout.
  const arr::PageMapSpec bc{arr::PageMapKind::kBlockCyclic, 0};
  EXPECT_THROW((void)bc.instantiate({2, 2, 2}, 2), oopp::Error);
  // A kind byte that names no layout (corrupt wire data).
  arr::PageMapSpec bad;
  bad.kind = static_cast<arr::PageMapKind>(99);
  EXPECT_THROW((void)bad.instantiate({2, 2, 2}, 2), oopp::Error);
  EXPECT_THROW((void)bad.pages_per_device({2, 2, 2}, 2), oopp::Error);
}

// ---------------------------------------------------------------------------
// Array
// ---------------------------------------------------------------------------

struct ArrayFixture {
  TempDir tmp;
  Cluster cluster{4};
  arr::BlockStorage storage;
  int arrays_made = 0;

  arr::Array make(Extents3 n, Extents3 b, int devices,
                  arr::PageMapKind kind = arr::PageMapKind::kRoundRobin,
                  arr::IoMode io = arr::IoMode::kParallel) {
    const Extents3 grid{oopp::ceil_div(n.n1, b.n1),
                        oopp::ceil_div(n.n2, b.n2),
                        oopp::ceil_div(n.n3, b.n3)};
    arr::BlockStorageConfig cfg;
    // Unique prefix per array: each device set owns its backing files.
    cfg.file_prefix = tmp.file("dev" + std::to_string(arrays_made++));
    cfg.devices = devices;
    cfg.pages_per_device = static_cast<std::int32_t>(
        arr::PageMapSpec{kind}.pages_per_device(grid, devices));
    cfg.n1 = static_cast<int>(b.n1);
    cfg.n2 = static_cast<int>(b.n2);
    cfg.n3 = static_cast<int>(b.n3);
    storage = arr::create_block_storage(cfg, [&](std::int32_t i) {
      return static_cast<oopp::net::MachineId>(i % cluster.size());
    });
    return arr::Array(n.n1, n.n2, n.n3, b.n1, b.n2, b.n3, storage,
                      arr::PageMapSpec{kind}, io);
  }
};

std::vector<double> iota_buffer(index_t n) {
  std::vector<double> v(static_cast<std::size_t>(n));
  std::iota(v.begin(), v.end(), 1.0);
  return v;
}

TEST(Array, WholeArrayWriteReadRoundTrip) {
  ArrayFixture fx;
  auto a = fx.make({8, 8, 8}, {4, 4, 4}, 3);
  const auto whole = arr::Domain::whole({8, 8, 8});
  const auto buf = iota_buffer(whole.volume());
  a.write(buf, whole);
  EXPECT_EQ(a.read(whole), buf);
}

TEST(Array, UnalignedDomainRoundTrip) {
  ArrayFixture fx;
  auto a = fx.make({10, 9, 7}, {4, 4, 4}, 4);  // grid 3x3x2, clipped edges
  const arr::Domain d(1, 9, 2, 7, 3, 7);
  const auto buf = iota_buffer(d.volume());
  a.write(buf, d);
  EXPECT_EQ(a.read(d), buf);
}

TEST(Array, PartialWritePreservesSurroundings) {
  ArrayFixture fx;
  auto a = fx.make({8, 8, 8}, {4, 4, 4}, 2);
  const auto whole = arr::Domain::whole({8, 8, 8});
  std::vector<double> base(static_cast<std::size_t>(whole.volume()), 1.0);
  a.write(base, whole);

  const arr::Domain inner(2, 5, 2, 5, 2, 5);
  std::vector<double> patch(static_cast<std::size_t>(inner.volume()), 9.0);
  a.write(patch, inner);

  const auto back = a.read(whole);
  const Extents3 e{8, 8, 8};
  for (index_t i1 = 0; i1 < 8; ++i1)
    for (index_t i2 = 0; i2 < 8; ++i2)
      for (index_t i3 = 0; i3 < 8; ++i3) {
        const double expect = inner.contains(i1, i2, i3) ? 9.0 : 1.0;
        EXPECT_DOUBLE_EQ(back[e.linear(i1, i2, i3)], expect)
            << i1 << "," << i2 << "," << i3;
      }
}

TEST(Array, SumMatchesLocalReduction) {
  ArrayFixture fx;
  auto a = fx.make({6, 6, 6}, {4, 4, 4}, 3);
  const auto whole = arr::Domain::whole({6, 6, 6});
  const auto buf = iota_buffer(whole.volume());
  a.write(buf, whole);
  const double expect = std::accumulate(buf.begin(), buf.end(), 0.0);
  EXPECT_DOUBLE_EQ(a.sum(whole), expect);
  EXPECT_DOUBLE_EQ(a.sum_all(), expect);

  const arr::Domain part(1, 5, 0, 3, 2, 6);
  const auto sub = a.read(part);
  EXPECT_DOUBLE_EQ(a.sum(part),
                   std::accumulate(sub.begin(), sub.end(), 0.0));
}

TEST(Array, SequentialAndParallelIoAgree) {
  ArrayFixture fx;
  auto a = fx.make({8, 8, 8}, {2, 4, 4}, 4);
  const auto whole = arr::Domain::whole({8, 8, 8});
  const auto buf = iota_buffer(whole.volume());
  a.set_io_mode(arr::IoMode::kSequential);
  a.write(buf, whole);
  const auto seq = a.read(whole);
  a.set_io_mode(arr::IoMode::kParallel);
  const auto par = a.read(whole);
  EXPECT_EQ(seq, par);
  EXPECT_EQ(seq, buf);
}

TEST(Array, GetSetSingleElements) {
  ArrayFixture fx;
  auto a = fx.make({5, 5, 5}, {2, 2, 2}, 2);
  a.set(4, 4, 4, 7.5);
  a.set(0, 0, 0, -1.0);
  EXPECT_DOUBLE_EQ(a.get(4, 4, 4), 7.5);
  EXPECT_DOUBLE_EQ(a.get(0, 0, 0), -1.0);
  EXPECT_DOUBLE_EQ(a.get(2, 2, 2), 0.0);
}

TEST(Array, DomainOutOfBoundsRejected) {
  ArrayFixture fx;
  auto a = fx.make({4, 4, 4}, {2, 2, 2}, 2);
  EXPECT_THROW(a.read(arr::Domain(0, 5, 0, 4, 0, 4)), oopp::check_error);
  EXPECT_THROW(a.write({1.0}, arr::Domain(3, 5, 0, 1, 0, 1)),
               oopp::check_error);
}

TEST(Array, WrongBufferSizeRejected) {
  ArrayFixture fx;
  auto a = fx.make({4, 4, 4}, {2, 2, 2}, 2);
  EXPECT_THROW(a.write({1.0, 2.0}, arr::Domain(0, 1, 0, 1, 0, 1)),
               oopp::check_error);
}

TEST(Array, EveryLayoutGivesSameSemantics) {
  for (auto kind :
       {arr::PageMapKind::kSingleDevice, arr::PageMapKind::kRoundRobin,
        arr::PageMapKind::kBlocked}) {
    ArrayFixture fx;
    auto a = fx.make({6, 5, 4}, {3, 2, 2}, 3, kind);
    const arr::Domain d(1, 6, 0, 5, 1, 3);
    const auto buf = iota_buffer(d.volume());
    a.write(buf, d);
    EXPECT_EQ(a.read(d), buf) << "layout " << static_cast<int>(kind);
  }
}

TEST(Array, CustomPageMap) {
  // A user-supplied layout: reverse round-robin.
  class ReverseMap final : public arr::PageMap {
   public:
    ReverseMap(Extents3 grid, std::int32_t devices)
        : grid_(grid), d_(devices) {}
    arr::PageAddress physical_page_address(index_t p1, index_t p2,
                                           index_t p3) const override {
      const index_t lin = grid_.linear(p1, p2, p3);
      return {static_cast<std::int32_t>(d_ - 1 - (lin % d_)),
              static_cast<std::int32_t>(lin / d_)};
    }

   private:
    Extents3 grid_;
    std::int32_t d_;
  };

  ArrayFixture fx;
  auto seed = fx.make({4, 4, 4}, {2, 2, 2}, 2);  // creates storage
  arr::Array a(4, 4, 4, 2, 2, 2, fx.storage,
               std::make_shared<ReverseMap>(Extents3{2, 2, 2}, 2));
  const auto whole = arr::Domain::whole({4, 4, 4});
  const auto buf = iota_buffer(whole.volume());
  a.write(buf, whole);
  EXPECT_EQ(a.read(whole), buf);
}

TEST(Array, DeviceSideReductions) {
  ArrayFixture fx;
  auto a = fx.make({6, 6, 6}, {3, 3, 3}, 3);
  const auto whole = arr::Domain::whole({6, 6, 6});
  std::vector<double> buf(static_cast<std::size_t>(whole.volume()));
  for (std::size_t i = 0; i < buf.size(); ++i)
    buf[i] = double(i % 37) - 18.0;
  a.write(buf, whole);

  EXPECT_DOUBLE_EQ(a.min(whole), *std::min_element(buf.begin(), buf.end()));
  EXPECT_DOUBLE_EQ(a.max(whole), *std::max_element(buf.begin(), buf.end()));
  double sumsq = 0.0;
  for (double x : buf) sumsq += x * x;
  EXPECT_NEAR(a.norm2(whole), std::sqrt(sumsq), 1e-9);

  const arr::Domain part(1, 5, 2, 6, 0, 3);
  const auto sub = a.read(part);
  EXPECT_DOUBLE_EQ(a.min(part), *std::min_element(sub.begin(), sub.end()));
  EXPECT_DOUBLE_EQ(a.max(part), *std::max_element(sub.begin(), sub.end()));
}

TEST(Array, DeviceSideUpdates) {
  ArrayFixture fx;
  auto a = fx.make({6, 6, 6}, {3, 3, 3}, 2);
  const auto whole = arr::Domain::whole({6, 6, 6});
  a.fill(2.0, whole);
  EXPECT_DOUBLE_EQ(a.sum(whole), 2.0 * 216);

  const arr::Domain inner(1, 5, 1, 5, 1, 5);
  a.scale(3.0, inner);
  a.shift(1.0, inner);
  // Inside: 2*3+1 = 7; outside: still 2.
  EXPECT_DOUBLE_EQ(a.get(2, 2, 2), 7.0);
  EXPECT_DOUBLE_EQ(a.get(0, 0, 0), 2.0);
  EXPECT_DOUBLE_EQ(a.sum(whole),
                   7.0 * inner.volume() + 2.0 * (216 - inner.volume()));

  // Sequential mode gives identical semantics.
  a.set_io_mode(arr::IoMode::kSequential);
  a.fill(0.0, inner);
  EXPECT_DOUBLE_EQ(a.sum(whole), 2.0 * (216 - inner.volume()));
}

TEST(Array, ReduceOverEmptyDomainRejected) {
  ArrayFixture fx;
  auto a = fx.make({4, 4, 4}, {2, 2, 2}, 2);
  EXPECT_THROW((void)a.min(arr::Domain(1, 1, 0, 4, 0, 4)), oopp::check_error);
}

// §5: "An application may deploy multiple coordinating Array client
// processes in parallel."
TEST(Array, MultipleRemoteClientProcesses) {
  ArrayFixture fx;
  auto local = fx.make({8, 8, 8}, {4, 4, 4}, 4);
  const auto whole = arr::Domain::whole({8, 8, 8});
  const auto buf = iota_buffer(whole.volume());
  local.write(buf, whole);

  // Deploy one Array client per machine, all sharing the block storage.
  oopp::ProcessGroup<arr::Array> clients;
  for (std::size_t m = 0; m < fx.cluster.size(); ++m) {
    clients.push_back(fx.cluster.make_remote<arr::Array>(
        m, index_t{8}, index_t{8}, index_t{8}, index_t{4}, index_t{4},
        index_t{4}, fx.storage, arr::PageMapSpec{}));
  }

  // Each client sums a disjoint slab; the partials combine to the total.
  std::vector<oopp::Future<double>> futs;
  for (std::size_t c = 0; c < clients.size(); ++c) {
    const index_t lo = static_cast<index_t>(c) * 8 / clients.size();
    const index_t hi = static_cast<index_t>(c + 1) * 8 / clients.size();
    futs.push_back(clients[c].async<&arr::Array::sum>(
        arr::Domain(lo, hi, 0, 8, 0, 8)));
  }
  double total = 0.0;
  for (auto& f : futs) total += f.get();
  EXPECT_DOUBLE_EQ(total, std::accumulate(buf.begin(), buf.end(), 0.0));
  clients.destroy_all();
}

TEST(Array, PersistsAsAProcess) {
  ArrayFixture fx;
  auto local = fx.make({4, 4, 4}, {2, 2, 2}, 2);
  const auto whole = arr::Domain::whole({4, 4, 4});
  const auto buf = iota_buffer(whole.volume());
  local.write(buf, whole);

  auto client = fx.cluster.make_remote<arr::Array>(
      1, index_t{4}, index_t{4}, index_t{4}, index_t{2}, index_t{2},
      index_t{2}, fx.storage, arr::PageMapSpec{});
  fx.cluster.passivate(client, "oopp://arrays/a");
  auto revived = fx.cluster.lookup<arr::Array>("oopp://arrays/a");
  EXPECT_EQ(revived.call<&arr::Array::read>(whole), buf);
}

TEST(ArrayCopy, PageAlignedGoesDeviceToDevice) {
  ArrayFixture fx;
  auto src = fx.make({8, 8, 8}, {4, 4, 4}, 4);
  auto src_storage = fx.storage;
  auto dst = fx.make({8, 8, 8}, {4, 4, 4}, 4, arr::PageMapKind::kBlocked);

  const auto whole = arr::Domain::whole({8, 8, 8});
  const auto buf = iota_buffer(whole.volume());
  src.write(buf, whole);

  EXPECT_TRUE(arr::copy_is_page_aligned(src, dst, whole));
  const auto stats = arr::copy(src, dst, whole);
  EXPECT_EQ(stats.pages_direct, 8u);
  EXPECT_EQ(stats.elements_buffered, 0u);
  EXPECT_EQ(dst.read(whole), buf);
}

TEST(ArrayCopy, UnalignedFallsBackToBufferedPath) {
  ArrayFixture fx;
  auto src = fx.make({8, 8, 8}, {4, 4, 4}, 2);
  auto dst = fx.make({8, 8, 8}, {4, 4, 4}, 2);
  const auto whole = arr::Domain::whole({8, 8, 8});
  src.write(iota_buffer(whole.volume()), whole);
  dst.fill(0.0, whole);

  const arr::Domain window(1, 7, 2, 6, 0, 8);  // not page-aligned
  EXPECT_FALSE(arr::copy_is_page_aligned(src, dst, window));
  const auto stats = arr::copy(src, dst, window);
  EXPECT_EQ(stats.pages_direct, 0u);
  EXPECT_EQ(stats.elements_buffered,
            static_cast<std::uint64_t>(window.volume()));
  EXPECT_EQ(dst.read(window), src.read(window));
  // Outside the window the destination is untouched.
  EXPECT_DOUBLE_EQ(dst.get(0, 0, 0), 0.0);
}

TEST(ArrayCopy, MutualPullsBetweenDevicesDoNotDeadlock) {
  // src and dst share the same devices with different layouts, so pulls
  // flow in both directions between the same pair of device processes.
  ArrayFixture fx;
  auto src = fx.make({8, 8, 8}, {4, 4, 4}, 2, arr::PageMapKind::kRoundRobin);
  auto src_storage = fx.storage;
  auto dst = fx.make({8, 8, 8}, {4, 4, 4}, 2, arr::PageMapKind::kBlocked);

  const auto whole = arr::Domain::whole({8, 8, 8});
  const auto buf = iota_buffer(whole.volume());
  src.write(buf, whole);
  const auto stats = arr::copy(src, dst, whole);
  EXPECT_EQ(stats.pages_direct, 8u);
  EXPECT_EQ(dst.read(whole), buf);
}

TEST(ArrayCopy, MismatchedExtentsRejected) {
  ArrayFixture fx;
  auto a = fx.make({4, 4, 4}, {2, 2, 2}, 2);
  auto a_storage = fx.storage;
  auto b = fx.make({8, 4, 4}, {2, 2, 2}, 2);
  EXPECT_THROW(arr::copy(a, b, arr::Domain(0, 4, 0, 4, 0, 4)),
               oopp::check_error);
}

// Property test: random writes and reads against an in-memory model.
class ArrayRandomOps : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ArrayRandomOps, MatchesReferenceModel) {
  oopp::Xoshiro256 rng(GetParam());
  ArrayFixture fx;
  const Extents3 n{7, 6, 5};
  const Extents3 b{3, 2, 2};
  const auto kinds = std::array{arr::PageMapKind::kSingleDevice,
                                arr::PageMapKind::kRoundRobin,
                                arr::PageMapKind::kBlocked};
  auto a = fx.make(n, b, 3, kinds[GetParam() % 3],
                   GetParam() % 2 ? arr::IoMode::kParallel
                                  : arr::IoMode::kSequential);

  std::vector<double> model(static_cast<std::size_t>(n.volume()), 0.0);

  auto random_domain = [&] {
    auto axis = [&](index_t extent) {
      const index_t lo = static_cast<index_t>(rng.below(extent));
      const index_t hi =
          lo + 1 + static_cast<index_t>(rng.below(extent - lo));
      return std::pair{lo, hi};
    };
    auto [l1, h1] = axis(n.n1);
    auto [l2, h2] = axis(n.n2);
    auto [l3, h3] = axis(n.n3);
    return arr::Domain(l1, h1, l2, h2, l3, h3);
  };

  for (int op = 0; op < 12; ++op) {
    const auto d = random_domain();
    if (rng.below(2) == 0) {
      std::vector<double> buf(static_cast<std::size_t>(d.volume()));
      for (auto& x : buf) x = rng.uniform(-10.0, 10.0);
      a.write(buf, d);
      for (index_t i1 = d.lo(0); i1 < d.hi(0); ++i1)
        for (index_t i2 = d.lo(1); i2 < d.hi(1); ++i2)
          for (index_t i3 = d.lo(2); i3 < d.hi(2); ++i3)
            model[n.linear(i1, i2, i3)] =
                buf[d.local_offset(i1, i2, i3)];
    } else {
      const auto got = a.read(d);
      for (index_t i1 = d.lo(0); i1 < d.hi(0); ++i1)
        for (index_t i2 = d.lo(1); i2 < d.hi(1); ++i2)
          for (index_t i3 = d.lo(2); i3 < d.hi(2); ++i3)
            ASSERT_DOUBLE_EQ(got[d.local_offset(i1, i2, i3)],
                             model[n.linear(i1, i2, i3)]);
    }
  }
  // Final global check, including sum.
  const auto whole = arr::Domain::whole(n);
  EXPECT_EQ(a.read(whole), model);
  EXPECT_NEAR(a.sum_all(),
              std::accumulate(model.begin(), model.end(), 0.0), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArrayRandomOps,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// ---------------------------------------------------------------------------
// Layout edge cases: hostile custom maps, serialization guards, more
// devices than pages.
// ---------------------------------------------------------------------------

TEST(Array, HostileCustomMapHitsBoundsCheckNotUB) {
  // A custom map that emits a device id beyond the storage set: every
  // access path must fail the bounds check instead of indexing data_
  // out of range.
  class EvilDeviceMap final : public arr::PageMap {
   public:
    arr::PageAddress physical_page_address(index_t, index_t,
                                           index_t) const override {
      return {7, 0};  // storage only has 2 devices
    }
  };
  ArrayFixture fx;
  auto seed = fx.make({4, 4, 4}, {2, 2, 2}, 2);  // creates storage
  arr::Array a(4, 4, 4, 2, 2, 2, fx.storage,
               std::make_shared<EvilDeviceMap>());
  const auto whole = arr::Domain::whole({4, 4, 4});
  EXPECT_THROW((void)a.read(whole), oopp::check_error);
  EXPECT_THROW(a.write(iota_buffer(whole.volume()), whole),
               oopp::check_error);
  EXPECT_THROW((void)a.sum(whole), oopp::check_error);
  EXPECT_THROW(a.fill(1.0, whole), oopp::check_error);
  a.set_io_mode(arr::IoMode::kSequential);
  EXPECT_THROW((void)a.read(whole), oopp::check_error);
  // Redistribution also refuses to trust the hostile source map.
  EXPECT_THROW((void)a.redistribute(arr::PageMapSpec{}), oopp::Error);
  // The storage itself is unharmed.
  EXPECT_EQ(seed.read(whole),
            std::vector<double>(static_cast<std::size_t>(whole.volume())));
}

TEST(Array, CustomMapSerializationFailsWithTypedErrorNotAbort) {
  ArrayFixture fx;
  auto seed = fx.make({4, 4, 4}, {2, 2, 2}, 2);
  class ReverseMap final : public arr::PageMap {
   public:
    arr::PageAddress physical_page_address(index_t p1, index_t p2,
                                           index_t p3) const override {
      const index_t lin = Extents3{2, 2, 2}.linear(p1, p2, p3);
      return {static_cast<std::int32_t>(1 - (lin % 2)),
              static_cast<std::int32_t>(lin / 2)};
    }
  };
  arr::Array a(4, 4, 4, 2, 2, 2, fx.storage, std::make_shared<ReverseMap>());
  const auto whole = arr::Domain::whole({4, 4, 4});
  const auto buf = iota_buffer(whole.volume());
  a.write(buf, whole);

  // Serializing the custom-map Array raises a typed error (a servant
  // attempting this fails that one call; nothing aborts) ...
  EXPECT_THROW((void)oopp::serial::to_bytes(a), oopp::Error);
  // ... and the Array and its devices remain fully usable afterwards.
  EXPECT_EQ(a.read(whole), buf);

  // Redistributing to a spec layout lifts the restriction.
  (void)a.redistribute(arr::PageMapSpec{arr::PageMapKind::kBlocked});
  auto clone = oopp::serial::from_bytes<arr::Array>(
      oopp::serial::to_bytes(a));
  EXPECT_EQ(clone.read(whole), buf);
}

TEST(Array, MoreDevicesThanPagesStillRoundTrips) {
  ArrayFixture fx;
  // 2 pages spread over 3 devices: the trailing device holds nothing.
  auto a = fx.make({4, 4, 4}, {4, 4, 2}, 3);
  const auto whole = arr::Domain::whole({4, 4, 4});
  const auto buf = iota_buffer(whole.volume());
  a.write(buf, whole);
  EXPECT_EQ(a.read(whole), buf);
  EXPECT_DOUBLE_EQ(a.sum_all(),
                   std::accumulate(buf.begin(), buf.end(), 0.0));
}

// ---------------------------------------------------------------------------
// Online redistribution + elastic devices.
// ---------------------------------------------------------------------------

struct RedistFixture {
  TempDir tmp;
  Cluster cluster{4};
  arr::BlockStorage storage;
  arr::BlockStorageConfig cfg;
  int made = 0;

  arr::Array make(Extents3 n, Extents3 b, int devices, arr::PageMapKind kind,
                  std::uint32_t service_us = 0,
                  arr::IoMode io = arr::IoMode::kParallel) {
    const Extents3 grid{oopp::ceil_div(n.n1, b.n1),
                        oopp::ceil_div(n.n2, b.n2),
                        oopp::ceil_div(n.n3, b.n3)};
    cfg = {};
    cfg.file_prefix = tmp.file("redist" + std::to_string(made++));
    cfg.devices = devices;
    cfg.pages_per_device = static_cast<std::int32_t>(
        arr::PageMapSpec{kind}.pages_per_device(grid, devices));
    cfg.n1 = static_cast<int>(b.n1);
    cfg.n2 = static_cast<int>(b.n2);
    cfg.n3 = static_cast<int>(b.n3);
    cfg.device_options.service_us = service_us;
    storage = arr::create_block_storage(cfg, [&](std::int32_t i) {
      return static_cast<oopp::net::MachineId>(i % cluster.size());
    });
    return arr::Array(n.n1, n.n2, n.n3, b.n1, b.n2, b.n3, storage,
                      arr::PageMapSpec{kind}, io);
  }

  /// One extra device compatible with the last make()'s storage set.
  remote_ptr<oopp::storage::ArrayPageDevice> extra_device(
      std::int32_t ordinal) {
    return arr::create_block_device(
        cfg, ordinal,
        static_cast<oopp::net::MachineId>(ordinal % cluster.size()));
  }
};

TEST(ArrayRedist, ByteIdentityAcrossEveryLayoutTransition) {
  RedistFixture fx;
  auto a = fx.make({8, 8, 8}, {2, 2, 2}, 3,
                   arr::PageMapKind::kSingleDevice);  // 64 pages
  const auto whole = arr::Domain::whole({8, 8, 8});
  const auto buf = iota_buffer(whole.volume());
  a.write(buf, whole);

  const std::array<arr::PageMapSpec, 4> targets{
      arr::PageMapSpec{arr::PageMapKind::kRoundRobin},
      arr::PageMapSpec{arr::PageMapKind::kBlocked},
      arr::PageMapSpec{arr::PageMapKind::kBlockCyclic, 3},
      arr::PageMapSpec{arr::PageMapKind::kSingleDevice}};
  std::uint64_t version = 0;
  for (const auto& target : targets) {
    const auto st = a.redistribute(target, {.batch_pages = 5});
    EXPECT_EQ(st.pages_migrated + st.writer_migrated, 64u)
        << target.name();
    EXPECT_EQ(st.map_version, ++version);
    EXPECT_FALSE(a.migrating());
    EXPECT_EQ(a.layout(), target);
    EXPECT_EQ(a.read(whole), buf) << "after move to " << target.name();
    EXPECT_DOUBLE_EQ(a.sum_all(),
                     std::accumulate(buf.begin(), buf.end(), 0.0));
  }
  EXPECT_EQ(a.map_version(), version);
}

TEST(ArrayRedist, SerializedCopySeesPostMigrationLayout) {
  RedistFixture fx;
  auto a = fx.make({8, 8, 8}, {4, 4, 4}, 2, arr::PageMapKind::kRoundRobin);
  const auto whole = arr::Domain::whole({8, 8, 8});
  const auto buf = iota_buffer(whole.volume());
  a.write(buf, whole);

  a.attach_device(fx.extra_device(2));
  EXPECT_EQ(a.device_count(), 3);
  (void)a.redistribute(arr::PageMapSpec{arr::PageMapKind::kBlocked});

  // The wire format carries the layout's device span and slot-bank base,
  // so a deserialized client resolves the same physical slots.
  auto clone =
      oopp::serial::from_bytes<arr::Array>(oopp::serial::to_bytes(a));
  EXPECT_EQ(clone.device_count(), 3);
  EXPECT_EQ(clone.read(whole), buf);
}

TEST(ArrayRedist, AttachValidatesPageShape) {
  RedistFixture fx;
  auto a = fx.make({8, 8, 8}, {4, 4, 4}, 2, arr::PageMapKind::kRoundRobin);
  auto mismatched = fx.cluster.make_remote<oopp::storage::ArrayPageDevice>(
      0, fx.tmp.file("mismatch"), 4, 2, 2, 2);
  EXPECT_THROW(a.attach_device(mismatched), oopp::Error);
  EXPECT_EQ(a.device_count(), 2);
}

TEST(ArrayRedist, DetachValidation) {
  RedistFixture fx;
  auto a = fx.make({4, 4, 4}, {2, 2, 2}, 2, arr::PageMapKind::kRoundRobin);
  EXPECT_THROW((void)a.detach_device(5), oopp::Error);
  (void)a.detach_device(1);
  EXPECT_EQ(a.device_count(), 1);
  EXPECT_THROW((void)a.detach_device(0), oopp::Error);  // last device
}

TEST(ArrayRedist, DetachDrainsDeviceAndPreservesBytes) {
  RedistFixture fx;
  auto a = fx.make({8, 8, 8}, {2, 2, 2}, 3, arr::PageMapKind::kRoundRobin);
  const auto whole = arr::Domain::whole({8, 8, 8});
  const auto buf = iota_buffer(whole.volume());
  a.write(buf, whole);

  const auto st = a.detach_device(1, {.batch_pages = 7});
  EXPECT_EQ(st.pages_migrated, 64u);
  EXPECT_EQ(a.device_count(), 2);
  EXPECT_EQ(a.read(whole), buf);

  // The dropped device still exists (the caller owns it) but no longer
  // serves any page of the array.
  const auto pr_before = a.pages_read();
  (void)a.read(whole);
  EXPECT_EQ(a.pages_read(), pr_before + 64);
}

TEST(ArrayRedist, RemoteControlPlane) {
  // The re-layout API is part of the Array protocol: a deployed client
  // process can be redistributed remotely.
  RedistFixture fx;
  auto local = fx.make({8, 8, 8}, {4, 4, 4}, 2,
                       arr::PageMapKind::kRoundRobin);
  const auto whole = arr::Domain::whole({8, 8, 8});
  const auto buf = iota_buffer(whole.volume());

  auto client = fx.cluster.make_remote<arr::Array>(
      1, index_t{8}, index_t{8}, index_t{8}, index_t{4}, index_t{4},
      index_t{4}, fx.storage, arr::PageMapSpec{arr::PageMapKind::kRoundRobin});
  client.call<&arr::Array::write>(buf, whole);

  const auto st = client.call<&arr::Array::redistribute>(
      arr::PageMapSpec{arr::PageMapKind::kBlocked}, arr::RedistOptions{});
  EXPECT_EQ(st.pages_migrated, 8u);
  EXPECT_EQ(client.call<&arr::Array::map_version>(), 1u);
  EXPECT_FALSE(client.call<&arr::Array::migrating>());
  EXPECT_EQ(client.call<&arr::Array::device_count>(), 2);
  EXPECT_EQ(client.call<&arr::Array::read>(whole), buf);
}

TEST(ArrayRedist, ServesReadsAndWritesDuringMigrationWithAttach) {
  // The acceptance scenario: an Array round-robin on 2 devices keeps
  // serving concurrent reads and writes with correct bytes while being
  // redistributed to blocked on 3 devices, one of which is attached
  // mid-run; zero failed calls.
  RedistFixture fx;
  auto a = fx.make({8, 8, 8}, {2, 2, 2}, 2, arr::PageMapKind::kRoundRobin,
                   /*service_us=*/150);  // slow spindles: migration overlaps
  const auto whole = arr::Domain::whole({8, 8, 8});
  std::vector<double> base(static_cast<std::size_t>(whole.volume()), 1.0);
  a.write(base, whole);

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::atomic<int> last_value{0};

  // Writer churn over its own slab: each round writes a uniform value
  // and must read exactly that value back.
  std::thread writer([&] {
    auto guard = fx.cluster.use(1);
    try {
      const arr::Domain slab(0, 4, 0, 8, 0, 8);
      for (int v = 2; !stop.load(); ++v) {
        std::vector<double> w(static_cast<std::size_t>(slab.volume()),
                              double(v));
        a.write(w, slab);
        last_value.store(v);
        for (const double x : a.read(slab))
          if (x != double(v)) {
            failures.fetch_add(1);
            break;
          }
      }
    } catch (...) {
      failures.fetch_add(1);
    }
  });
  // Reader churn over the untouched slab: must always see the base.
  std::thread reader([&] {
    auto guard = fx.cluster.use(2);
    try {
      const arr::Domain slab(4, 8, 0, 8, 0, 8);
      while (!stop.load()) {
        for (const double x : a.read(slab))
          if (x != 1.0) {
            failures.fetch_add(1);
            break;
          }
      }
    } catch (...) {
      failures.fetch_add(1);
    }
  });

  a.attach_device(fx.extra_device(2));
  EXPECT_EQ(a.device_count(), 3);
  const auto st = a.redistribute(arr::PageMapSpec{arr::PageMapKind::kBlocked},
                                 {.batch_pages = 4});
  stop = true;
  writer.join();
  reader.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(st.pages_migrated + st.writer_migrated, 64u);
  EXPECT_EQ(st.map_version, 1u);
  EXPECT_FALSE(a.migrating());
  EXPECT_EQ(a.layout().kind, arr::PageMapKind::kBlocked);

  // Final bytes: the writer's slab holds its last round, the rest the base.
  const arr::Domain wslab(0, 4, 0, 8, 0, 8);
  for (const double x : a.read(wslab))
    EXPECT_DOUBLE_EQ(x, double(last_value.load()));
  const arr::Domain rslab(4, 8, 0, 8, 0, 8);
  for (const double x : a.read(rslab)) EXPECT_DOUBLE_EQ(x, 1.0);

  // Migration activity is visible in the array.redist telemetry scope.
  auto& scope = oopp::telemetry::Metrics::scope_for("array.redist");
  EXPECT_GE(scope.counter("pages_migrated").value(), 64u);
  EXPECT_GT(scope.counter("dual_reads").value(), 0u);
  EXPECT_GT(st.dual_reads, 0u);
}

TEST(ArrayRedist, DetachUnderLoad) {
  RedistFixture fx;
  auto a = fx.make({8, 8, 8}, {2, 2, 2}, 3, arr::PageMapKind::kRoundRobin,
                   /*service_us=*/100);
  const auto whole = arr::Domain::whole({8, 8, 8});
  const auto buf = iota_buffer(whole.volume());
  a.write(buf, whole);

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::thread reader([&] {
    auto guard = fx.cluster.use(1);
    try {
      while (!stop.load())
        if (a.read(whole) != buf) failures.fetch_add(1);
    } catch (...) {
      failures.fetch_add(1);
    }
  });

  const auto st = a.detach_device(0, {.batch_pages = 3});
  stop = true;
  reader.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(st.pages_migrated, 64u);
  EXPECT_EQ(a.device_count(), 2);
  EXPECT_EQ(a.read(whole), buf);
}

}  // namespace
