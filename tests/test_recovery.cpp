// Fault-tolerant remote calls: retry/backoff rides out message loss, the
// server-side dedup cache keeps retried non-reentrant methods at-most-once
// (so with a completing retry: exactly-once), circuit breakers convert a
// dead peer into fast typed failures, and the partial-failure group
// operations contain one member's death to one typed error.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <filesystem>

#include "array/block_storage.hpp"
#include "core/expected.hpp"
#include "core/group.hpp"
#include "core/oopp.hpp"
#include "fft/fft3d.hpp"
#include "fft/out_of_core.hpp"
#include "net/faulty_fabric.hpp"
#include "net/inproc_fabric.hpp"
#include "storage/page_device.hpp"
#include "storage/replicated_page_device.hpp"
#include "telemetry/metrics.hpp"
#include "util/prng.hpp"

using namespace oopp;
using namespace std::chrono_literals;

namespace {

/// CI hook (the faults-smoke job): OOPP_METRICS_OUT=<path> dumps the
/// process-global metrics registry — rpc.retry / rpc.breaker counters
/// included — once the suite finishes.
class MetricsDumpEnv : public ::testing::Environment {
 public:
  void TearDown() override {
    const char* out = std::getenv("OOPP_METRICS_OUT");
    if (!out) return;
    std::ofstream(out) << telemetry::Metrics::instance().json() << "\n";
  }
};
const auto* const kMetricsDump =
    ::testing::AddGlobalTestEnvironment(new MetricsDumpEnv);

/// CI hook (the faults-smoke job): OOPP_LOCKGRAPH_OUT=<path> dumps this
/// process's lock-order graph (run with OOPP_DIST_LOCK_CHECK=1 so the
/// cross-node edges are recorded); tools/oopp_graph.py merges the dumps
/// and gates on cycles.
class LockgraphDumpEnv : public ::testing::Environment {
 public:
  void TearDown() override {
    const char* out = std::getenv("OOPP_LOCKGRAPH_OUT");
    if (!out) return;
    const auto parent = std::filesystem::path(out).parent_path();
    if (!parent.empty()) std::filesystem::create_directories(parent);
    std::ofstream(out) << util::lockcheck::dump_graph_json(0) << "\n";
  }
};
const auto* const kLockgraphDump =
    ::testing::AddGlobalTestEnvironment(new LockgraphDumpEnv);

/// Non-reentrant counter: every execution of bump() is observable, which
/// is what lets the tests count *executions* (not responses) and prove
/// the at-most-once guarantee.
class Counter {
 public:
  Counter() = default;
  int bump() { return ++n_; }
  int count() const { return n_; }

 private:
  int n_ = 0;
};

class Pinger {
 public:
  Pinger() = default;
  int poke() { return 42; }
  std::vector<double> echo(const std::vector<double>& v) { return v; }
};

}  // namespace

template <>
struct oopp::rpc::class_def<Counter> {
  static std::string name() { return "recovery.Counter"; }
  using ctors = ctor_list<ctor<>>;
  template <class B>
  static void bind(B& b) {
    b.template method<&Counter::bump>("bump");
    b.template method<&Counter::count>("count");
  }
};

template <>
struct oopp::rpc::class_def<Pinger> {
  static std::string name() { return "recovery.Pinger"; }
  using ctors = ctor_list<ctor<>>;
  template <class B>
  static void bind(B& b) {
    b.template method<&Pinger::poke>("poke");
    b.template method<&Pinger::echo>("echo");
  }
};

namespace {

struct FaultyCluster {
  net::FaultyFabric* fabric = nullptr;  // owned by the cluster
  std::unique_ptr<Cluster> cluster;

  explicit FaultyCluster(std::size_t machines = 2,
                         rpc::Node::Options node_opts = {.checksums = true}) {
    Cluster::Options opts;
    opts.machines = machines;
    opts.node = node_opts;
    opts.node.checksums = true;
    opts.fabric_factory = [&](std::size_t n) {
      auto faulty = std::make_unique<net::FaultyFabric>(
          std::make_unique<net::InProcFabric>(n), net::FaultyFabric::Faults{});
      fabric = faulty.get();
      return faulty;
    };
    cluster = std::make_unique<Cluster>(opts);
  }
};

/// Retry policy tuned for the in-process fabric: round trips are tens of
/// microseconds, so a 50 ms attempt timeout only fires on genuine loss.
rpc::CallPolicy test_policy(std::uint32_t max_attempts = 8) {
  rpc::CallPolicy p = rpc::resilient_policy(50ms, max_attempts);
  p.backoff_initial = 1ms;
  p.backoff_max = 10ms;
  return p;
}

// The issue's acceptance gate: 1000 calls over a fabric dropping 5% of
// requests AND 5% of responses complete with zero caller-visible errors,
// and the non-reentrant method executed exactly once per call.
TEST(Recovery, ThousandCallsRideOutFivePercentLoss) {
  FaultyCluster fc;
  auto c = fc.cluster->make_remote<Counter>(1).with_policy(test_policy());
  fc.fabric->set_faults({.drop_probability = 0.05, .seed = 23});

  for (int i = 0; i < 1000; ++i) {
    ASSERT_NO_THROW((void)c.call<&Counter::bump>()) << "call " << i;
  }
  EXPECT_GT(fc.fabric->dropped(), 0u) << "fault injection never fired";

  fc.fabric->set_faults({});
  EXPECT_EQ(c.call<&Counter::count>(), 1000);  // exactly once each
}

// The batched slab reads behind the prefetch pipeline ride the same
// retry/dedup machinery as scalar calls: under 5% loss every batch
// completes, returns intact data, and the device's operation counter
// shows each page was served exactly once — a replayed batch never
// re-executes (and never double-charges the seek accounting).
TEST(Recovery, BatchedPageReadsRideOutLossExactlyOnce) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("oopp-recovery-" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  FaultyCluster fc;
  auto dev = fc.cluster
                 ->make_remote<storage::PageDevice>(
                     1, (dir / "pages.bin").string(), 16, 256)
                 .with_policy(test_policy());

  std::vector<std::int32_t> all(16);
  for (int i = 0; i < 16; ++i) all[i] = i;
  std::vector<storage::Page> seed;
  for (int i = 0; i < 16; ++i) {
    storage::Page p(256);
    for (std::size_t j = 0; j < p.size(); ++j)
      p[j] = static_cast<unsigned char>((i * 7 + j) % 251);
    seed.push_back(std::move(p));
  }
  dev.call<&storage::PageDevice::write_pages>(seed, all);

  fc.fabric->set_faults({.drop_probability = 0.05, .seed = 47});
  constexpr int kBatches = 50;
  for (int r = 0; r < kBatches; ++r) {
    std::vector<storage::Page> got;
    ASSERT_NO_THROW(got = dev.call<&storage::PageDevice::read_pages>(all))
        << "batch " << r;
    ASSERT_EQ(got.size(), seed.size());
    for (int i = 0; i < 16; ++i)
      ASSERT_EQ(got[i], seed[i]) << "batch " << r << " page " << i;
  }
  EXPECT_GT(fc.fabric->dropped(), 0u) << "fault injection never fired";

  fc.fabric->set_faults({});
  // One batched write of 16 + kBatches batched reads of 16, exactly once.
  EXPECT_EQ(dev.call<&storage::PageDevice::operations>(),
            16u + 16u * kBatches);
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

// Dedup proof in isolation: with every response destroyed, the request
// executes once, every retry replays the cached (lost) response, and the
// server-side counter still reads 1.
TEST(Recovery, DedupCachePreventsDoubleExecution) {
  FaultyCluster fc;
  auto c = fc.cluster->make_remote<Counter>(1);
  fc.fabric->set_faults({.drop_probability = 1.0,
                         .affect_requests = false,
                         .seed = 29});

  rpc::CallPolicy p = test_policy(/*max_attempts=*/4);
  p.attempt_timeout = 20ms;
  auto retried = c.with_policy(p);
  EXPECT_THROW((void)retried.call<&Counter::bump>(), rpc::CallTimeout);

  fc.fabric->set_faults({});
  EXPECT_EQ(c.call<&Counter::count>(), 1)
      << "a retried non-reentrant call executed more than once";
}

// Corrupted frames are retried too (retry_bad_frame): a mangled response
// is replayed from the dedup cache without re-executing; a mangled
// request was never executed and simply runs on the retry.
TEST(Recovery, BadFramesHealUnderRetry) {
  FaultyCluster fc;
  auto c = fc.cluster->make_remote<Counter>(1).with_policy(test_policy());
  fc.fabric->set_faults({.corrupt_probability = 0.3, .seed = 31});

  for (int i = 0; i < 200; ++i) {
    ASSERT_NO_THROW((void)c.call<&Counter::bump>()) << "call " << i;
  }
  EXPECT_GT(fc.fabric->corrupted(), 0u);

  fc.fabric->set_faults({});
  EXPECT_EQ(c.call<&Counter::count>(), 200);
}

// The node-level default policy applies to calls that carry none.
TEST(Recovery, NodeDefaultPolicyApplies) {
  FaultyCluster fc;
  auto p = fc.cluster->make_remote<Pinger>(1);
  fc.cluster->node(0).set_default_policy(test_policy());
  fc.fabric->set_faults({.drop_probability = 0.1, .seed = 37});

  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(p.call<&Pinger::poke>(), 42) << "call " << i;
  }
}

// Breaker lifecycle: consecutive retry-layer failures open it (fast
// typed failures without touching the network), the cooldown admits a
// half-open probe, and a successful probe closes it again.
TEST(Recovery, BreakerOpensFastFailsAndRecovers) {
  rpc::Node::Options node_opts;
  node_opts.breaker_threshold = 3;
  node_opts.breaker_cooldown = 100ms;
  FaultyCluster fc(2, node_opts);
  auto p = fc.cluster->make_remote<Pinger>(1);
  fc.fabric->set_faults({.drop_probability = 1.0, .seed = 41});

  rpc::CallPolicy pol = test_policy(/*max_attempts=*/2);
  pol.attempt_timeout = 15ms;
  auto retried = p.with_policy(pol);

  // Burn through calls until the accumulated lost attempts trip the
  // breaker; every failure is typed (timeout before it opens,
  // PeerUnavailable after).
  bool opened = false;
  for (int i = 0; i < 10 && !opened; ++i) {
    try {
      (void)retried.call<&Pinger::poke>();
      FAIL() << "call succeeded on a fabric dropping everything";
    } catch (const rpc::PeerUnavailable&) {
      opened = true;
    } catch (const rpc::CallTimeout&) {
    }
  }
  ASSERT_TRUE(opened) << "breaker never opened";
  EXPECT_EQ(fc.cluster->node(0).peer_health(1).state,
            rpc::BreakerState::kOpen);

  // Open breaker = fast fail: no attempt timeout is paid.
  const auto t0 = steady_clock::now();
  EXPECT_THROW((void)retried.call<&Pinger::poke>(), rpc::PeerUnavailable);
  EXPECT_LT(steady_clock::now() - t0, 10ms);

  // Heal the network, wait out the cooldown: the next call is the
  // half-open probe, it succeeds, and the breaker closes.
  fc.fabric->set_faults({});
  std::this_thread::sleep_for(120ms);
  EXPECT_EQ(retried.call<&Pinger::poke>(), 42);
  EXPECT_EQ(fc.cluster->node(0).peer_health(1).state,
            rpc::BreakerState::kClosed);
}

// Partial gather: one deleted member costs one typed per-member error,
// not the whole operation.  (gather<> on the same group would throw.)
TEST(Recovery, PartialGatherContainsOneDeadMember) {
  Cluster cluster(4);
  std::vector<remote_ptr<Pinger>> members;
  for (net::MachineId m = 0; m < 4; ++m)
    members.push_back(cluster.make_remote<Pinger>(m));
  ProcessGroup<Pinger> group(std::move(members));

  group[2].destroy();

  auto results = group.gather_partial<&Pinger::poke>();
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(failed_indices(results), std::vector<std::size_t>{2});
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (i == 2) {
      EXPECT_FALSE(results[i].has_value());
      EXPECT_EQ(results[i].error_code(), net::CallStatus::kObjectNotFound);
      EXPECT_THROW((void)results[i].value(), rpc::ObjectNotFound);
    } else {
      ASSERT_TRUE(results[i].has_value()) << "member " << i;
      EXPECT_EQ(results[i].value(), 42);
    }
  }

  // The all-or-nothing spelling still throws, as documented.
  EXPECT_THROW((void)group.gather<&Pinger::poke>(), rpc::ObjectNotFound);
}

TEST(Recovery, PartialBarrierReportsFailedMembers) {
  Cluster cluster(3);
  std::vector<remote_ptr<Pinger>> members;
  for (net::MachineId m = 0; m < 3; ++m)
    members.push_back(cluster.make_remote<Pinger>(m));
  ProcessGroup<Pinger> group(std::move(members));

  group[1].destroy();

  auto results = group.barrier_partial();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].has_value());
  EXPECT_FALSE(results[1].has_value());
  EXPECT_EQ(results[1].error_code(), net::CallStatus::kObjectNotFound);
  EXPECT_TRUE(results[2].has_value());
}

TEST(Recovery, PartialGatherIndexedKeepsResults) {
  Cluster cluster(3);
  std::vector<remote_ptr<Pinger>> members;
  for (net::MachineId m = 0; m < 3; ++m)
    members.push_back(cluster.make_remote<Pinger>(m));
  ProcessGroup<Pinger> group(std::move(members));

  auto results = group.gather_indexed_partial<&Pinger::echo>(
      [](std::size_t i) {
        return std::make_tuple(std::vector<double>{double(i)});
      });
  ASSERT_EQ(results.size(), 3u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].has_value());
    EXPECT_EQ(results[i].value(), std::vector<double>{double(i)});
  }
}

// -- replicated durability under faults (ReplicaRecovery) -------------------
//
// The CI replica-kill lane runs exactly this suite
// (--gtest_filter=ReplicaRecovery.*) and gates on the storage.replica
// counters it leaves behind: quorum_reads > 0 and failovers >= 1.

std::uint64_t replica_counter(std::string_view name) {
  return telemetry::Metrics::scope_for("storage.replica")
      .counter(name)
      .value();
}

/// The ISSUE acceptance gate: an out-of-core FFT over k=3 replicated
/// storage, one replica (the leased primary of the first coordinator's
/// first page range) killed mid-pass, must complete with output
/// byte-identical to the same transform on plain storage — and the
/// failover stall a caller observed stays bounded.
TEST(ReplicaRecovery, ReplicaKilledMidFftCompletesByteIdentical) {
  namespace arr = oopp::array;
  namespace fft = oopp::fft;
  Cluster cluster(4);
  const auto dir = std::filesystem::temp_directory_path() /
                   ("oopp-replica-fft-" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  const oopp::Extents3 e{8, 6, 10};
  const oopp::Extents3 b{4, 3, 5};
  const oopp::Extents3 grid{2, 2, 2};
  const arr::PageMapSpec spec{arr::PageMapKind::kRoundRobin};
  arr::BlockStorageConfig cfg;
  cfg.devices = 4;
  cfg.pages_per_device =
      static_cast<std::int32_t>(spec.pages_per_device(grid, 4));
  cfg.n1 = static_cast<int>(b.n1);
  cfg.n2 = static_cast<int>(b.n2);
  cfg.n3 = static_cast<int>(b.n3);
  // Simulated device service time stretches the pass so the mid-run kill
  // lands while slabs are still in flight.
  cfg.device_options.service_us = 300;

  auto make_plain = [&](const std::string& tag) {
    auto c = cfg;
    c.file_prefix = (dir / tag).string();
    return arr::Array(e.n1, e.n2, e.n3, b.n1, b.n2, b.n3,
                      arr::create_block_storage(c,
                                                [&](std::int32_t i) {
                                                  return static_cast<
                                                      net::MachineId>(
                                                      i % cluster.size());
                                                }),
                      spec);
  };
  auto make_replicated = [&](const std::string& tag) {
    auto c = cfg;
    c.file_prefix = (dir / tag).string();
    return arr::Array(
        e.n1, e.n2, e.n3, b.n1, b.n2, b.n3,
        arr::create_replicated_block_storage(
            c, storage::ReplicaOptions{.replicas = 3, .lease_ms = 50},
            [&](std::int32_t i) {
              return static_cast<net::MachineId>(i % cluster.size());
            },
            [&](std::int32_t i, std::int32_t j) {
              return static_cast<net::MachineId>((i + j) % cluster.size());
            }),
        spec);
  };

  const auto whole = arr::Domain::whole(e);
  oopp::Xoshiro256 rng(97);
  std::vector<double> re0(static_cast<std::size_t>(e.volume()));
  std::vector<double> im0(re0.size());
  for (auto& x : re0) x = rng.uniform(-1, 1);
  for (auto& x : im0) x = rng.uniform(-1, 1);

  // Reference pass on plain single-copy storage.
  auto re_plain = make_plain("plain-re");
  auto im_plain = make_plain("plain-im");
  re_plain.write(re0, whole);
  im_plain.write(im0, whole);
  const fft::OutOfCoreOptions ooc{.max_bytes = 4000};
  fft::fft3d_out_of_core(re_plain, im_plain, -1, ooc);
  const auto re_expect = re_plain.read(whole);
  const auto im_expect = im_plain.read(whole);

  // Replicated pass with a mid-run replica kill.
  auto re = make_replicated("repl-re");
  auto im = make_replicated("repl-im");
  re.write(re0, whole);
  im.write(im0, whole);

  const auto failovers0 = replica_counter("failovers");
  const auto quorum0 = replica_counter("quorum_reads");
  const auto writes_mark = replica_counter("replica_writes");

  // First storage slot of the re array is a replicated coordinator.
  remote_ptr<storage::ReplicatedPageDevice> coord(
      re.storage()[0].machine(), re.storage()[0].id());
  std::thread killer([&cluster, coord, writes_mark] {
    auto guard = cluster.use(0);
    // Wait until the transform is demonstrably under way...
    while (replica_counter("replica_writes") < writes_mark + 16)
      std::this_thread::sleep_for(1ms);
    // ...then kill the replica holding the lease on the first page range.
    const auto status =
        coord.call<&storage::ReplicatedPageDevice::replica_status>();
    const auto refs =
        coord.call<&storage::ReplicatedPageDevice::replica_refs>();
    const auto primary = status.range_primary.empty()
                             ? 0
                             : std::max(status.range_primary[0], 0);
    refs[static_cast<std::size_t>(primary)].destroy();
  });

  fft::fft3d_out_of_core(re, im, -1, ooc);
  killer.join();

  const auto re_out = re.read(whole);
  const auto im_out = im.read(whole);
  ASSERT_EQ(re_out.size(), re_expect.size());
  for (std::size_t i = 0; i < re_out.size(); ++i) {
    ASSERT_EQ(re_out[i], re_expect[i]) << "re[" << i << "]";  // bit-exact
    ASSERT_EQ(im_out[i], im_expect[i]) << "im[" << i << "]";
  }

  EXPECT_EQ(coord.call<&storage::ReplicatedPageDevice::alive_replicas>(), 2);
  EXPECT_GE(replica_counter("failovers") - failovers0, 1u)
      << "the killed replica never triggered a failover";
  EXPECT_GE(replica_counter("quorum_reads") - quorum0, 1u)
      << "no read ever fell back to a quorum";
  // Bounded stall: the p99 of time callers spent riding out a failover.
  EXPECT_LT(telemetry::Metrics::scope_for("storage.replica")
                .histogram("stall_ns")
                .percentile(99.0),
            2'000'000'000u);
  std::filesystem::remove_all(dir);
}

// Replicated writes ride the same retry/dedup machinery as everything
// else: under 5% message loss every quorum write completes, and each
// replica executed every page write exactly once — a replayed replicated
// write is never applied twice anywhere.
TEST(ReplicaRecovery, ReplicatedWritesExactlyOncePerReplicaUnderLoss) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("oopp-replica-loss-" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  FaultyCluster fc(3);

  std::vector<remote_ptr<storage::ArrayPageDevice>> replicas;
  for (int j = 0; j < 3; ++j) {
    replicas.push_back(fc.cluster->make_remote<storage::ArrayPageDevice>(
        static_cast<net::MachineId>(j),
        (dir / ("dev.r" + std::to_string(j))).string(), 8, 4, 4, 4,
        storage::DeviceOptions{}));
  }
  auto coord = fc.cluster->make_remote<storage::ReplicatedPageDevice>(
      0, replicas, storage::ReplicaOptions{.replicas = 3});
  // Retries for both hops: client -> coordinator (handle policy) and
  // coordinator -> replica (node-level default on the coordinator's node).
  fc.cluster->node(0).set_default_policy(test_policy());
  auto handle = coord.with_policy(test_policy());

  const std::size_t bytes = 4 * 4 * 4 * sizeof(double);
  std::vector<storage::Page> pages;
  std::vector<std::int32_t> indices;
  for (int i = 0; i < 8; ++i) {
    storage::Page p(bytes);
    for (std::size_t j = 0; j < p.size(); ++j)
      p[j] = static_cast<unsigned char>((i * 13 + j) % 251);
    pages.push_back(std::move(p));
    indices.push_back(i);
  }

  fc.fabric->set_faults({.drop_probability = 0.05, .seed = 53});
  constexpr int kRounds = 40;
  for (int r = 0; r < kRounds; ++r) {
    ASSERT_NO_THROW(
        handle.call<&storage::PageDevice::write_pages>(pages, indices))
        << "round " << r;
  }
  EXPECT_GT(fc.fabric->dropped(), 0u) << "fault injection never fired";
  fc.fabric->set_faults({});

  // No replica was marked dead, every acknowledged write landed on all
  // three, and nobody executed a page write twice.
  EXPECT_EQ(coord.call<&storage::ReplicatedPageDevice::alive_replicas>(), 3);
  for (int j = 0; j < 3; ++j) {
    EXPECT_EQ(replicas[j].call<&storage::PageDevice::operations>(),
              static_cast<std::uint64_t>(8 * kRounds))
        << "replica " << j;
    const auto stamps =
        replicas[j].call<&storage::PageDevice::page_stamps>(indices);
    for (const auto s : stamps) EXPECT_EQ(s, std::uint64_t{kRounds});
  }
  auto got = coord.call<&storage::PageDevice::read_pages>(indices);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(got[i], pages[i]) << "page " << i;
  std::filesystem::remove_all(dir);
}

// Policies are a property of the handle: they survive serialization of
// the *local* handle object but are not part of the remote identity.
TEST(Recovery, PolicyIsHandleLocal) {
  Cluster cluster(2);
  auto p = cluster.make_remote<Pinger>(1);
  auto retried = p.with_policy(test_policy());
  EXPECT_EQ(p, retried);  // identity: same remote object
  EXPECT_FALSE(p.policy().has_value());
  ASSERT_TRUE(retried.policy().has_value());
  EXPECT_EQ(retried.policy()->max_attempts, test_policy().max_attempts);

  serial::OArchive oa;
  oa(retried);
  EXPECT_TRUE(retried.policy().has_value()) << "serializing wiped the policy";
  serial::IArchive ia(oa.bytes());
  auto wire = ia.read<remote_ptr<Pinger>>();
  EXPECT_EQ(wire, p);
  EXPECT_FALSE(wire.policy().has_value()) << "policy leaked onto the wire";
}

}  // namespace
