// Bandwidth-optimal collectives and the Communicator BLAS layer: tree
// shape and cost-model selection units, every allreduce algorithm checked
// against a local model over a size sweep, segmented broadcast/reduce,
// slab kernels against in-memory references, telemetry counters, faults
// (5% message loss must yield exact results — never a silent wrong
// answer), and concurrent scalar collectives on one group.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "array/array.hpp"
#include "array/block_storage.hpp"
#include "array/page_map.hpp"
#include "coll/communicator.hpp"
#include "core/oopp.hpp"
#include "net/faulty_fabric.hpp"
#include "net/inproc_fabric.hpp"
#include "rpc/call_policy.hpp"
#include "telemetry/metrics.hpp"
#include "util/prng.hpp"

using namespace oopp;
using namespace std::chrono_literals;
namespace coll = oopp::coll;
namespace arr = oopp::array;
namespace fs = std::filesystem;
using coll::Algo;
using coll::Communicator;
using coll::CostHints;
using coll::ReduceKind;

namespace {

class TempDir {
 public:
  TempDir() {
    dir_ = fs::temp_directory_path() /
           ("oopp-comm-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter_++));
    fs::create_directories(dir_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (dir_ / name).string();
  }

 private:
  fs::path dir_;
  static inline std::atomic<int> counter_{0};
};

// ---------------------------------------------------------------------------
// Units: tree shape, algorithm selection, segmenting
// ---------------------------------------------------------------------------

TEST(CommUnit, TreeShapeIsConsistent) {
  for (std::int64_t n = 1; n <= 24; ++n) {
    int edges = 0;
    for (std::int64_t r = 0; r < n; ++r) {
      const coll::TreeShape t = coll::tree_shape(r, n);
      if (r == 0) {
        EXPECT_EQ(t.parent, -1);
      } else {
        ASSERT_GE(t.parent, 0) << "n=" << n << " rel=" << r;
        ASSERT_LT(t.parent, r) << "parents precede children";
        // The parent lists r among its children.
        const coll::TreeShape p = coll::tree_shape(t.parent, n);
        bool found = false;
        for (std::int32_t c : p.children) found |= (c == r);
        EXPECT_TRUE(found) << "n=" << n << " rel=" << r;
      }
      for (std::int32_t c : t.children) {
        ASSERT_GT(c, r);
        ASSERT_LT(c, n);
        EXPECT_EQ(coll::tree_shape(c, n).parent, r);
        ++edges;
      }
    }
    EXPECT_EQ(edges, n - 1) << "a tree over n members has n-1 edges";
  }
}

TEST(CommUnit, ChooseAllreduceBySizeAndShape) {
  // E11-flavoured hints: 20 us per message, finite per-byte cost.
  const CostHints h{/*alpha_ns=*/20'000.0, /*byte_ns=*/0.1};
  // Tiny payloads are latency-bound: fewest rounds wins.  On powers of
  // two, halving ties two-pass on rounds and carries fewer bytes, so it
  // wins at every size; off powers of two the tree is the only
  // log-round algorithm left.
  EXPECT_EQ(coll::choose_allreduce(8, 16, h), Algo::kHalving);
  EXPECT_EQ(coll::choose_allreduce(8, 13, h), Algo::kTwoPass);
  // n <= 2: the tree and the ring are the same graph; take fewest messages.
  EXPECT_EQ(coll::choose_allreduce(8u << 20, 2, h), Algo::kTwoPass);
  // Large payloads are bandwidth-bound: halving on powers of two...
  EXPECT_EQ(coll::choose_allreduce(8u << 20, 16, h), Algo::kHalving);
  // ...ring everywhere else.
  EXPECT_EQ(coll::choose_allreduce(8u << 20, 12, h), Algo::kRing);
}

TEST(CommUnit, ChooseSegmentsIsBoundedAndMonotone) {
  const CostHints h{20'000.0, 0.1};
  EXPECT_EQ(coll::choose_segments(0, h), 1u);
  EXPECT_EQ(coll::choose_segments(1u << 30, h), 16u);
  std::uint32_t prev = 0;
  for (std::size_t b = 1024; b <= (64u << 20); b *= 4) {
    const std::uint32_t s = coll::choose_segments(b, h);
    EXPECT_GE(s, prev);
    EXPECT_GE(s, 1u);
    EXPECT_LE(s, 16u);
    prev = s;
  }
}

// ---------------------------------------------------------------------------
// Member-resident vector collectives
// ---------------------------------------------------------------------------

std::vector<std::vector<double>> random_chunks(int n, int len,
                                               std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::vector<double>> data(static_cast<std::size_t>(n));
  for (auto& v : data) {
    v.resize(static_cast<std::size_t>(len));
    for (auto& x : v) x = rng.uniform(-4.0, 4.0);
  }
  return data;
}

std::vector<double> reduce_reference(
    const std::vector<std::vector<double>>& data, ReduceKind kind) {
  std::vector<double> ref = data[0];
  for (std::size_t i = 1; i < data.size(); ++i)
    for (std::size_t j = 0; j < ref.size(); ++j)
      ref[j] = coll::combine_one(kind, ref[j], data[i][j]);
  return ref;
}

struct CommFixture {
  Cluster cluster{4};

  Communicator comm(int n) {
    std::vector<net::MachineId> machines;
    for (int i = 0; i < n; ++i)
      machines.push_back(static_cast<net::MachineId>(i % cluster.size()));
    return Communicator::on_machines(machines);
  }
};

struct AllreduceCase {
  int n;
  int len;
  ReduceKind kind;
  Algo algo;
};

class AllreduceSweep : public ::testing::TestWithParam<AllreduceCase> {};

TEST_P(AllreduceSweep, MatchesLocalModel) {
  const auto& c = GetParam();
  CommFixture fx;
  auto comm = fx.comm(c.n);
  const auto data = random_chunks(
      c.n, c.len, static_cast<std::uint64_t>(c.n * 1009 + c.len));
  comm.set_member_data(data);
  const auto ref = reduce_reference(data, c.kind);

  const Algo ran = comm.allreduce_members(c.kind, c.algo);
  if (c.algo != Algo::kAuto) {
    // A forced algorithm runs as forced, except halving on a non-power-
    // of-two group, which degrades to the ring.
    const Algo want = (c.algo == Algo::kHalving && !coll::is_pow2(c.n))
                          ? Algo::kRing
                          : c.algo;
    EXPECT_EQ(ran, want);
  }
  for (const auto& got : comm.member_data()) {
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t j = 0; j < ref.size(); ++j)
      EXPECT_NEAR(got[j], ref[j], 1e-9) << "element " << j;
  }
  comm.destroy();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllreduceSweep,
    ::testing::Values(
        AllreduceCase{2, 64, ReduceKind::kSum, Algo::kTwoPass},
        AllreduceCase{3, 97, ReduceKind::kSum, Algo::kRing},
        AllreduceCase{4, 64, ReduceKind::kSum, Algo::kHalving},
        AllreduceCase{5, 96, ReduceKind::kMax, Algo::kRing},
        AllreduceCase{5, 1, ReduceKind::kSum, Algo::kRing},
        AllreduceCase{5, 0, ReduceKind::kSum, Algo::kTwoPass},
        AllreduceCase{6, 100, ReduceKind::kMin, Algo::kHalving},  // -> ring
        AllreduceCase{8, 256, ReduceKind::kSum, Algo::kHalving},
        AllreduceCase{8, 130, ReduceKind::kProd, Algo::kRing},
        AllreduceCase{13, 83, ReduceKind::kSum, Algo::kRing},
        AllreduceCase{13, 83, ReduceKind::kSum, Algo::kTwoPass},
        AllreduceCase{16, 256, ReduceKind::kSum, Algo::kHalving},
        AllreduceCase{16, 64, ReduceKind::kMax, Algo::kAuto},
        AllreduceCase{1, 16, ReduceKind::kSum, Algo::kAuto}));

TEST(Communicator, RepeatedAllreducesOnOneGroup) {
  // Epochs isolate back-to-back collectives; the result of one feeds the
  // next, exercising the staging GC between rounds.
  CommFixture fx;
  auto comm = fx.comm(5);
  auto data = random_chunks(5, 48, 77);
  comm.set_member_data(data);
  std::vector<double> ref = reduce_reference(data, ReduceKind::kSum);
  for (int round = 0; round < 4; ++round) {
    const Algo forced = (round % 2) ? Algo::kRing : Algo::kTwoPass;
    comm.allreduce_members(ReduceKind::kSum, forced);
    // After a sum-allreduce every member holds ref, so the next round
    // sums n identical copies.
    const auto got = comm.member_data();
    for (const auto& v : got) {
      ASSERT_EQ(v.size(), ref.size());
      for (std::size_t j = 0; j < ref.size(); ++j)
        ASSERT_NEAR(v[j], ref[j], 1e-7) << "round " << round;
    }
    for (auto& x : ref) x *= 5.0;
  }
  comm.destroy();
}

TEST(Communicator, BcastDeliversRootVector) {
  CommFixture fx;
  auto comm = fx.comm(7);
  std::vector<std::vector<double>> chunks(7);
  for (int i = 0; i < 7; ++i)
    chunks[static_cast<std::size_t>(i)] = {double(i), -double(i)};
  chunks[0] = {3.25, -1.5, 2.0, 99.0};
  comm.set_member_data(chunks);
  comm.bcast_members(4);
  for (const auto& v : comm.member_data())
    EXPECT_EQ(v, (std::vector<double>{3.25, -1.5, 2.0, 99.0}));
  comm.destroy();
}

TEST(Communicator, ReduceLandsAtRootOnly) {
  CommFixture fx;
  auto comm = fx.comm(6);
  const auto data = random_chunks(6, 33, 13);
  comm.set_member_data(data);
  const auto ref = reduce_reference(data, ReduceKind::kSum);
  comm.reduce_members(ReduceKind::kSum, 33);
  const auto got = comm.member_data();
  ASSERT_EQ(got[0].size(), ref.size());
  for (std::size_t j = 0; j < ref.size(); ++j)
    EXPECT_NEAR(got[0][j], ref[j], 1e-9);
  // MPI semantics: non-root buffers are unspecified after a reduce
  // (interior tree members combine in place) — leaves keep their data.
  const coll::TreeShape leaf = coll::tree_shape(5, 6);
  ASSERT_TRUE(leaf.children.empty());
  EXPECT_EQ(got[5], data[5]);
  comm.destroy();
}

TEST(Communicator, UnwiredPeerRejectsCollectives) {
  CommFixture fx;
  auto p = fx.cluster.make_remote<coll::Peer>(1, std::int32_t{0});
  EXPECT_THROW((void)p.call<&coll::Peer::allreduce>(
                   std::uint64_t{1}, ReduceKind::kSum, Algo::kAuto),
               rpc::RemoteError);
  p.destroy();
}

TEST(Communicator, TelemetryCountersAdvance) {
  auto& ring =
      telemetry::Metrics::scope_for("coll").counter("allreduce_ring");
  auto& bytes = telemetry::Metrics::scope_for("coll").counter("bytes_moved");
  const auto ring0 = ring.value();
  const auto bytes0 = bytes.value();

  CommFixture fx;
  auto comm = fx.comm(4);
  comm.set_member_data(random_chunks(4, 64, 5));
  comm.allreduce_members(ReduceKind::kSum, Algo::kRing);
  comm.destroy();

  // In-process cluster: every member's counters land in this process.
  EXPECT_EQ(ring.value() - ring0, 4u);  // one per member
  EXPECT_GE(bytes.value() - bytes0, 4u * 3u * 16u * sizeof(double));
}

// ---------------------------------------------------------------------------
// BLAS kernels over Arrays
// ---------------------------------------------------------------------------

struct BlasFixture {
  TempDir tmp;
  Cluster cluster{4};
  std::vector<arr::BlockStorage> storages;  // keep devices alive

  /// A kBlocked array: each device owns one contiguous run of pages, the
  /// layout the Communicator's slab partitioning requires.
  arr::Array make(Extents3 n, Extents3 b, int devices) {
    const Extents3 grid{oopp::ceil_div(n.n1, b.n1),
                        oopp::ceil_div(n.n2, b.n2),
                        oopp::ceil_div(n.n3, b.n3)};
    arr::BlockStorageConfig cfg;
    cfg.file_prefix =
        tmp.file("dev" + std::to_string(storages.size()));
    cfg.devices = devices;
    cfg.pages_per_device = static_cast<std::int32_t>(
        arr::PageMapSpec{arr::PageMapKind::kBlocked}.pages_per_device(
            grid, devices));
    cfg.n1 = static_cast<int>(b.n1);
    cfg.n2 = static_cast<int>(b.n2);
    cfg.n3 = static_cast<int>(b.n3);
    storages.push_back(arr::create_block_storage(cfg, [&](std::int32_t i) {
      return static_cast<net::MachineId>(i % cluster.size());
    }));
    return arr::Array(n.n1, n.n2, n.n3, b.n1, b.n2, b.n3, storages.back(),
                      arr::PageMapSpec{arr::PageMapKind::kBlocked});
  }
};

TEST(CommunicatorBlas, DotNormAxpyScaleMatchReference) {
  BlasFixture fx;
  // 37 elements over 4 devices in pages of 4: a ragged tail slab.
  const index_t N = 37;
  auto x = fx.make({N, 1, 1}, {4, 1, 1}, 4);
  auto y = fx.make({N, 1, 1}, {4, 1, 1}, 4);
  auto comm = Communicator::over(x.storage());

  Xoshiro256 rng(21);
  std::vector<double> xs(static_cast<std::size_t>(N));
  std::vector<double> ys(static_cast<std::size_t>(N));
  for (index_t i = 0; i < N; ++i) {
    xs[static_cast<std::size_t>(i)] = rng.uniform(-2.0, 2.0);
    ys[static_cast<std::size_t>(i)] = rng.uniform(-2.0, 2.0);
    x.set(i, 0, 0, xs[static_cast<std::size_t>(i)]);
    y.set(i, 0, 0, ys[static_cast<std::size_t>(i)]);
  }

  double ref_dot = 0.0, ref_nsq = 0.0;
  for (index_t i = 0; i < N; ++i) {
    ref_dot += xs[static_cast<std::size_t>(i)] *
               ys[static_cast<std::size_t>(i)];
    ref_nsq += xs[static_cast<std::size_t>(i)] *
               xs[static_cast<std::size_t>(i)];
  }
  EXPECT_NEAR(comm.dot(x, y), ref_dot, 1e-9);
  EXPECT_NEAR(comm.norm2(x), std::sqrt(ref_nsq), 1e-9);

  comm.axpy(2.5, x, y);
  for (index_t i = 0; i < N; ++i)
    EXPECT_NEAR(y.get(i, 0, 0),
                ys[static_cast<std::size_t>(i)] +
                    2.5 * xs[static_cast<std::size_t>(i)],
                1e-9)
        << "i=" << i;

  comm.scale(-0.5, x);
  for (index_t i = 0; i < N; ++i)
    EXPECT_NEAR(x.get(i, 0, 0), -0.5 * xs[static_cast<std::size_t>(i)],
                1e-9)
        << "i=" << i;
  comm.destroy();
}

TEST(CommunicatorBlas, MatvecMatchesReference) {
  BlasFixture fx;
  const index_t R = 12, C = 8;
  auto a = fx.make({R, C, 1}, {3, C, 1}, 4);  // row slabs of 3 full rows
  auto x = fx.make({C, 1, 1}, {2, 1, 1}, 4);
  auto y = fx.make({R, 1, 1}, {3, 1, 1}, 4);
  auto comm = Communicator::over(a.storage());

  Xoshiro256 rng(34);
  std::vector<double> av(static_cast<std::size_t>(R * C));
  std::vector<double> xv(static_cast<std::size_t>(C));
  for (index_t r = 0; r < R; ++r)
    for (index_t c = 0; c < C; ++c) {
      const double v = rng.uniform(-1.0, 1.0);
      av[static_cast<std::size_t>(r * C + c)] = v;
      a.set(r, c, 0, v);
    }
  for (index_t c = 0; c < C; ++c) {
    xv[static_cast<std::size_t>(c)] = rng.uniform(-1.0, 1.0);
    x.set(c, 0, 0, xv[static_cast<std::size_t>(c)]);
  }

  comm.matvec(a, x, y);
  for (index_t r = 0; r < R; ++r) {
    double ref = 0.0;
    for (index_t c = 0; c < C; ++c)
      ref += av[static_cast<std::size_t>(r * C + c)] *
             xv[static_cast<std::size_t>(c)];
    EXPECT_NEAR(y.get(r, 0, 0), ref, 1e-9) << "row " << r;
  }
  comm.destroy();
}

// reuse_matrix keeps each member's A slab resident in the Peer across
// matvecs; drop_matrix_cache() must forget it when A is rewritten.
TEST(CommunicatorBlas, MatvecReuseAndInvalidation) {
  auto& hits =
      telemetry::Metrics::scope_for("coll").counter("matvec_reuse_hits");
  BlasFixture fx;
  const index_t R = 12, C = 8;
  auto a = fx.make({R, C, 1}, {3, C, 1}, 4);
  auto x = fx.make({C, 1, 1}, {2, 1, 1}, 4);
  auto y = fx.make({R, 1, 1}, {3, 1, 1}, 4);
  auto comm = Communicator::over(a.storage());

  Xoshiro256 rng(55);
  std::vector<double> av(static_cast<std::size_t>(R * C));
  std::vector<double> xv(static_cast<std::size_t>(C));
  for (auto& v : av) v = rng.uniform(-1.0, 1.0);
  for (auto& v : xv) v = rng.uniform(-1.0, 1.0);
  a.write(av, arr::Domain(0, R, 0, C, 0, 1));
  x.write(xv, arr::Domain(0, C, 0, 1, 0, 1));

  const auto check = [&] {
    for (index_t r = 0; r < R; ++r) {
      double ref = 0.0;
      for (index_t c = 0; c < C; ++c)
        ref += av[static_cast<std::size_t>(r * C + c)] *
               xv[static_cast<std::size_t>(c)];
      EXPECT_NEAR(y.get(r, 0, 0), ref, 1e-9) << "row " << r;
    }
  };

  comm.matvec(a, x, y, /*reuse_matrix=*/true);  // cold: fills the cache
  check();
  const auto hits0 = hits.value();
  comm.matvec(a, x, y, /*reuse_matrix=*/true);  // warm: slab stays put
  check();
  EXPECT_EQ(hits.value() - hits0, 4u);  // one hit per member

  // Rewrite A; the resident slabs are now stale until dropped.
  for (auto& v : av) v = rng.uniform(-1.0, 1.0);
  a.write(av, arr::Domain(0, R, 0, C, 0, 1));
  comm.drop_matrix_cache();
  comm.matvec(a, x, y, /*reuse_matrix=*/true);
  check();
  comm.destroy();
}

TEST(CommunicatorBlas, NonBlockedLayoutRejected) {
  BlasFixture fx;
  // Round-robin pages interleave devices: no contiguous slabs to own.
  const Extents3 n{16, 1, 1}, b{2, 1, 1};
  arr::BlockStorageConfig cfg;
  cfg.file_prefix = fx.tmp.file("rr");
  cfg.devices = 4;
  cfg.pages_per_device = 2;
  cfg.n1 = 2;
  auto storage = arr::create_block_storage(cfg, [&](std::int32_t i) {
    return static_cast<net::MachineId>(i % fx.cluster.size());
  });
  arr::Array v(n.n1, n.n2, n.n3, b.n1, b.n2, b.n3, storage,
               arr::PageMapSpec{arr::PageMapKind::kRoundRobin});
  auto comm = Communicator::over(storage);
  arr::Array w = v;
  EXPECT_THROW((void)comm.dot(v, w), oopp::check_error);
  comm.destroy();
  arr::destroy_block_storage(storage);
}

// Concurrent scalar collectives on one group: dot and norm2 drivers are
// reentrant and epoch-isolated, so two client threads may overlap them
// freely.  (Run under the TSan lane like every other test.)
TEST(CommunicatorBlas, ConcurrentScalarCollectives) {
  BlasFixture fx;
  const index_t N = 32;
  auto x = fx.make({N, 1, 1}, {4, 1, 1}, 4);
  auto y = fx.make({N, 1, 1}, {4, 1, 1}, 4);
  auto comm = Communicator::over(x.storage());
  double ref_dot = 0.0, ref_nsq = 0.0;
  for (index_t i = 0; i < N; ++i) {
    const double xv = 0.25 * double(i) - 3.0;
    const double yv = 1.0 - 0.125 * double(i);
    x.set(i, 0, 0, xv);
    y.set(i, 0, 0, yv);
    ref_dot += xv * yv;
    ref_nsq += xv * xv;
  }
  constexpr int kIters = 8;
  std::thread t1([&] {
    auto guard = fx.cluster.use(1);
    for (int i = 0; i < kIters; ++i)
      ASSERT_NEAR(comm.dot(x, y), ref_dot, 1e-9);
  });
  std::thread t2([&] {
    auto guard = fx.cluster.use(2);
    for (int i = 0; i < kIters; ++i)
      ASSERT_NEAR(comm.norm2(x), std::sqrt(ref_nsq), 1e-9);
  });
  t1.join();
  t2.join();
  comm.destroy();
}

// ---------------------------------------------------------------------------
// Faults: collectives over a lossy fabric
// ---------------------------------------------------------------------------

struct FaultyCommCluster {
  net::FaultyFabric* fabric = nullptr;  // owned by the cluster
  std::unique_ptr<Cluster> cluster;

  explicit FaultyCommCluster(std::size_t machines = 4) {
    Cluster::Options opts;
    opts.machines = machines;
    opts.node.checksums = true;
    // Peer-to-peer segment sends carry no per-call policy; the node-level
    // default makes them (and the drivers) ride out drops.  In-process
    // round trips are microseconds, so 150 ms attempts only fire on loss.
    opts.node.default_policy = rpc::resilient_policy(150ms, 20);
    opts.node.default_policy.backoff_initial = 1ms;
    opts.node.default_policy.backoff_max = 10ms;
    opts.fabric_factory = [&](std::size_t n) {
      auto faulty = std::make_unique<net::FaultyFabric>(
          std::make_unique<net::InProcFabric>(n),
          net::FaultyFabric::Faults{});
      fabric = faulty.get();
      return faulty;
    };
    cluster = std::make_unique<Cluster>(opts);
  }
};

// The satellite gate: at 5% message loss every collective still returns
// the *exact* result — retries and the (epoch, chan, seg, from) staging
// keep delivery effectively exactly-once across nested hops, and the
// done-epoch window drops stragglers from finished collectives.
TEST(CommunicatorFaults, ExactResultsAtFivePercentLoss) {
  FaultyCommCluster fc;
  std::vector<net::MachineId> machines;
  for (int i = 0; i < 5; ++i)
    machines.push_back(static_cast<net::MachineId>(i % 4));
  auto comm = Communicator::on_machines(machines);
  const auto data = random_chunks(5, 40, 91);
  const auto ref = reduce_reference(data, ReduceKind::kSum);
  comm.set_member_data(data);
  fc.fabric->set_faults({.drop_probability = 0.05, .seed = 101});

  for (int round = 0; round < 6; ++round) {
    // Alternate tree and ring so both wire patterns face the loss.
    comm.set_member_data(data);
    comm.allreduce_members(ReduceKind::kSum,
                           (round % 2) ? Algo::kRing : Algo::kTwoPass);
    for (const auto& got : comm.member_data()) {
      ASSERT_EQ(got.size(), ref.size());
      for (std::size_t j = 0; j < ref.size(); ++j)
        ASSERT_NEAR(got[j], ref[j], 1e-9)
            << "round " << round << " element " << j;
    }
  }
  EXPECT_GT(fc.fabric->dropped(), 0u) << "the fault injector must fire";

  fc.fabric->set_faults({});
  comm.destroy();
}

TEST(CommunicatorFaults, BroadcastExactUnderLoss) {
  FaultyCommCluster fc;
  std::vector<net::MachineId> machines;
  for (int i = 0; i < 6; ++i)
    machines.push_back(static_cast<net::MachineId>(i % 4));
  auto comm = Communicator::on_machines(machines);
  std::vector<std::vector<double>> chunks(6, std::vector<double>{0.0});
  Xoshiro256 rng(55);
  chunks[0].resize(64);
  for (auto& v : chunks[0]) v = rng.uniform(-8.0, 8.0);
  comm.set_member_data(chunks);
  fc.fabric->set_faults({.drop_probability = 0.05, .seed = 71});
  comm.bcast_members(64);
  for (const auto& v : comm.member_data()) EXPECT_EQ(v, chunks[0]);
  fc.fabric->set_faults({});
  comm.destroy();
}

}  // namespace
