// Tests for the network substrate: inbox delivery and ordering, the cost
// model, and both fabrics moving frames faithfully.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "net/cost_model.hpp"
#include "net/inbox.hpp"
#include "net/inproc_fabric.hpp"
#include "net/tcp_fabric.hpp"
#include "util/clock.hpp"

namespace net = oopp::net;

namespace {

net::Message make_msg(net::MachineId src, net::MachineId dst,
                      net::SeqNum seq, std::size_t payload = 0) {
  return net::make_request(
      src, dst, seq, /*object=*/0, /*method=*/0,
      std::vector<std::byte>(payload, std::byte{0xab}), /*checksum=*/false);
}

TEST(CostModel, ZeroModelHasNoDelay) {
  EXPECT_EQ(net::CostModel::zero().delay_ns(1 << 20), 0);
}

TEST(CostModel, AlphaBetaShape) {
  net::CostModel m{.latency_ns = 1000, .bytes_per_us = 1000.0,
                   .per_message_ns = 0};
  EXPECT_EQ(m.delay_ns(0), 1000);
  // 1e6 bytes at 1000 bytes/us = 1e3 us = 1e6 ns, plus latency.
  EXPECT_NEAR(static_cast<double>(m.delay_ns(1'000'000)), 1'001'000.0, 1.0);
  // Delay is monotone in size.
  EXPECT_LT(m.delay_ns(100), m.delay_ns(100'000));
}

TEST(Inbox, DeliversInPushOrder) {
  net::Inbox inbox;
  inbox.push_now(make_msg(0, 1, 1));
  inbox.push_now(make_msg(0, 1, 2));
  inbox.push_now(make_msg(0, 1, 3));
  EXPECT_EQ(inbox.pop()->header.seq, 1u);
  EXPECT_EQ(inbox.pop()->header.seq, 2u);
  EXPECT_EQ(inbox.pop()->header.seq, 3u);
}

TEST(Inbox, HonorsDeliveryTime) {
  net::Inbox inbox;
  const auto t0 = oopp::steady_clock::now();
  inbox.push(make_msg(0, 1, 1), t0 + std::chrono::milliseconds(30));
  auto m = inbox.pop();
  ASSERT_TRUE(m.has_value());
  EXPECT_GE(oopp::steady_clock::now() - t0, std::chrono::milliseconds(25));
}

TEST(Inbox, DueMessageNotBlockedBehindUndueOne) {
  // Two links with independent delays: link 0's message is due far in the
  // future, link 2's is due now.  pop() must deliver the due one promptly
  // instead of head-of-line blocking on the queue order.
  net::Inbox inbox;
  const auto t0 = oopp::steady_clock::now();
  inbox.push(make_msg(0, 1, 1), t0 + std::chrono::milliseconds(200));
  inbox.push(make_msg(2, 1, 2), t0);

  auto first = inbox.pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->header.seq, 2u);
  EXPECT_LT(oopp::steady_clock::now() - t0, std::chrono::milliseconds(150));

  auto second = inbox.pop();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->header.seq, 1u);
  EXPECT_GE(oopp::steady_clock::now() - t0, std::chrono::milliseconds(195));
}

TEST(Inbox, PerLinkFifoSurvivesEarliestDuePop) {
  // Same link, monotonic delivery times (as every fabric guarantees):
  // delivery must stay FIFO even though pop() now scans for due entries.
  net::Inbox inbox;
  const auto t0 = oopp::steady_clock::now();
  inbox.push(make_msg(0, 1, 1), t0 + std::chrono::milliseconds(5));
  inbox.push(make_msg(0, 1, 2), t0 + std::chrono::milliseconds(5));
  inbox.push(make_msg(0, 1, 3), t0 + std::chrono::milliseconds(6));
  EXPECT_EQ(inbox.pop()->header.seq, 1u);
  EXPECT_EQ(inbox.pop()->header.seq, 2u);
  EXPECT_EQ(inbox.pop()->header.seq, 3u);
}

TEST(Inbox, CloseUnblocksConsumer) {
  net::Inbox inbox;
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    inbox.close();
  });
  EXPECT_FALSE(inbox.pop().has_value());
  closer.join();
}

TEST(Inbox, PushAfterCloseIsDropped) {
  net::Inbox inbox;
  inbox.close();
  inbox.push_now(make_msg(0, 1, 1));
  EXPECT_EQ(inbox.size(), 0u);
}

TEST(InProcFabric, DeliversToAttachedInbox) {
  net::InProcFabric fabric(2);
  net::Inbox a, b;
  fabric.attach(0, &a);
  fabric.attach(1, &b);
  fabric.send(make_msg(0, 1, 7, 64));
  auto m = b.pop();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->header.seq, 7u);
  EXPECT_EQ(m->payload.size(), 64u);
  EXPECT_EQ(fabric.messages_sent(), 1u);
  EXPECT_GT(fabric.bytes_sent(), 64u);
}

TEST(InProcFabric, PerLinkFifoEvenWithSizeDependentDelay) {
  // A big message (slow) followed by a tiny one (fast) on the same link
  // must still arrive in order.
  net::CostModel cost{.latency_ns = 0, .bytes_per_us = 1.0,
                      .per_message_ns = 0};  // 1 byte/us → big = visible delay
  net::InProcFabric fabric(2, cost);
  net::Inbox a, b;
  fabric.attach(0, &a);
  fabric.attach(1, &b);
  fabric.send(make_msg(0, 1, 1, 20'000));  // ~20 ms
  fabric.send(make_msg(0, 1, 2, 0));       // ~0 ms, would overtake w/o FIFO
  EXPECT_EQ(b.pop()->header.seq, 1u);
  EXPECT_EQ(b.pop()->header.seq, 2u);
}

TEST(InProcFabric, CostModelDelaysDelivery) {
  net::CostModel cost{.latency_ns = 30'000'000, .bytes_per_us = 0.0,
                      .per_message_ns = 0};  // 30 ms latency
  net::InProcFabric fabric(2, cost);
  net::Inbox a, b;
  fabric.attach(0, &a);
  fabric.attach(1, &b);
  const auto t0 = oopp::steady_clock::now();
  fabric.send(make_msg(0, 1, 1));
  auto m = b.pop();
  ASSERT_TRUE(m.has_value());
  EXPECT_GE(oopp::steady_clock::now() - t0, std::chrono::milliseconds(25));
}

TEST(InProcFabric, EgressSerializesSenderMessages) {
  // 4 messages of 10'000 bytes at 1 byte/us egress: the last one cannot
  // be injected before ~40 ms even though the network itself is free.
  net::CostModel cost{};
  cost.egress_bytes_per_us = 1.0;
  net::InProcFabric fabric(3, cost);
  net::Inbox a, b, c;
  fabric.attach(0, &a);
  fabric.attach(1, &b);
  fabric.attach(2, &c);
  const auto t0 = oopp::steady_clock::now();
  // Fan out to two different destinations: egress is per-sender, so they
  // still serialize.
  fabric.send(make_msg(0, 1, 1, 10'000));
  fabric.send(make_msg(0, 2, 2, 10'000));
  fabric.send(make_msg(0, 1, 3, 10'000));
  fabric.send(make_msg(0, 2, 4, 10'000));
  (void)b.pop();
  (void)c.pop();
  (void)b.pop();
  (void)c.pop();
  const auto elapsed = oopp::steady_clock::now() - t0;
  EXPECT_GE(elapsed, std::chrono::milliseconds(35));
}

TEST(InProcFabric, EgressDoesNotCoupleDifferentSenders) {
  net::CostModel cost{};
  cost.egress_bytes_per_us = 1.0;
  net::InProcFabric fabric(3, cost);
  net::Inbox a, b, c;
  fabric.attach(0, &a);
  fabric.attach(1, &b);
  fabric.attach(2, &c);
  const auto t0 = oopp::steady_clock::now();
  // Two senders inject ~10 ms each concurrently: total ~10 ms, not 20.
  fabric.send(make_msg(0, 2, 1, 10'000));
  fabric.send(make_msg(1, 2, 2, 10'000));
  (void)c.pop();
  (void)c.pop();
  const auto elapsed = oopp::steady_clock::now() - t0;
  EXPECT_LT(elapsed, std::chrono::milliseconds(18));
}

TEST(TcpFabric, RoundTripsFrames) {
  net::TcpFabric fabric(2);
  net::Inbox a, b;
  fabric.attach(0, &a);
  fabric.attach(1, &b);
  EXPECT_GT(fabric.port(0), 0);
  EXPECT_GT(fabric.port(1), 0);

  // This test exercises the wire codec itself, so it hand-sets every
  // header field on purpose.
  auto m = make_msg(0, 1, 99, 0);
  m.header.object = 42;                            // oopp-lint: allow(raw-message-header)
  m.header.method = 0x1234567890abcdefULL;         // oopp-lint: allow(raw-message-header)
  m.header.kind = net::MsgKind::kResponse;         // oopp-lint: allow(raw-message-header)
  m.header.status = net::CallStatus::kRemoteException;  // oopp-lint: allow(raw-message-header)
  std::vector<std::byte> payload(1024);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::byte>(i & 0xff);
  m.payload = net::Buffer(std::move(payload));
  fabric.send(std::move(m));

  auto got = b.pop();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->header.seq, 99u);
  EXPECT_EQ(got->header.object, 42u);
  EXPECT_EQ(got->header.method, 0x1234567890abcdefULL);
  EXPECT_EQ(got->header.kind, net::MsgKind::kResponse);
  EXPECT_EQ(got->header.status, net::CallStatus::kRemoteException);
  ASSERT_EQ(got->payload.size(), 1024u);
  for (std::size_t i = 0; i < got->payload.size(); ++i)
    ASSERT_EQ(got->payload[i], static_cast<std::byte>(i & 0xff));
  fabric.shutdown();
}

TEST(TcpFabric, ManyMessagesBothDirections) {
  net::TcpFabric fabric(2);
  net::Inbox a, b;
  fabric.attach(0, &a);
  fabric.attach(1, &b);
  constexpr int kN = 200;
  for (int i = 0; i < kN; ++i) {
    fabric.send(make_msg(0, 1, static_cast<net::SeqNum>(i), 100));
    fabric.send(make_msg(1, 0, static_cast<net::SeqNum>(1000 + i), 100));
  }
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(b.pop()->header.seq, static_cast<net::SeqNum>(i));
    EXPECT_EQ(a.pop()->header.seq, static_cast<net::SeqNum>(1000 + i));
  }
  fabric.shutdown();
}

TEST(TcpFabric, EmptyPayload) {
  net::TcpFabric fabric(2);
  net::Inbox a, b;
  fabric.attach(0, &a);
  fabric.attach(1, &b);
  fabric.send(make_msg(0, 1, 5, 0));
  EXPECT_EQ(b.pop()->payload.size(), 0u);
  fabric.shutdown();
}

}  // namespace
