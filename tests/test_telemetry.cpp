// Tests for the oopp::telemetry layer: trace ids crossing the TCP wire,
// client/server/local span linkage, the merged cross-node timeline
// (tools/oopp_trace.py), timeout spans, metrics counters and histograms,
// the runtime-disabled fast path, and the collapsed error hierarchy.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/oopp.hpp"
#include "storage/array_page_device.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

using oopp::Cluster;
using oopp::remote_ptr;
namespace net = oopp::net;
namespace rpc = oopp::rpc;
namespace telemetry = oopp::telemetry;
namespace storage = oopp::storage;

namespace {

/// Servant that sleeps — lets a Future::get_for deadline expire.
class Sleepy {
 public:
  Sleepy() = default;
  int nap(int ms) {
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    return ms;
  }
};

}  // namespace

template <>
struct oopp::rpc::class_def<Sleepy> {
  static std::string name() { return "test.Sleepy"; }
  using ctors = ctor_list<ctor<>>;
  template <class B>
  static void bind(B& b) {
    b.template method<&Sleepy::nap>("nap");
  }
};

namespace {

/// Scoped OOPP_TRACE override; restores the previous state on exit.
class TracingOn {
 public:
  TracingOn() { telemetry::set_enabled(true); }
  ~TracingOn() { telemetry::set_enabled(false); }
};

std::vector<telemetry::Span> spans_of(Cluster& c, net::MachineId m) {
  return c.node(m).span_sink().snapshot();
}

const telemetry::Span* find_span(const std::vector<telemetry::Span>& spans,
                                 const std::string& name) {
  for (const auto& s : spans)
    if (name == s.name) return &s;
  return nullptr;
}

TEST(Telemetry, TraceIdsPropagateAcrossTcpFabric) {
  TracingOn on;
  Cluster::Options opts;
  opts.machines = 2;
  opts.fabric = Cluster::FabricKind::kTcp;
  Cluster cluster(opts);

  auto dev = cluster.make_remote<storage::ArrayPageDevice>(
      1, "/tmp/oopp-telemetry-tcp-" + std::to_string(::getpid()), 2, 2, 2,
      2);
  (void)dev.call<&storage::ArrayPageDevice::sum>(0);

  // Client span lives on the caller's node, server span on the callee's;
  // the pair is linked by (trace_id, parent span id) carried in the frame.
  const auto client_spans = spans_of(cluster, 0);
  const auto server_spans = spans_of(cluster, 1);
  const auto* server =
      find_span(server_spans, "oopp.storage.ArrayPageDevice.sum");
  ASSERT_NE(server, nullptr);
  ASSERT_EQ(server->kind, telemetry::SpanKind::kServer);

  const telemetry::Span* client = nullptr;
  for (const auto& s : client_spans)
    if (s.span_id == server->parent_id) client = &s;
  ASSERT_NE(client, nullptr) << "server span's parent not on the client";
  EXPECT_EQ(client->trace_id, server->trace_id);
  EXPECT_EQ(client->kind, telemetry::SpanKind::kClient);
  EXPECT_STREQ(client->name, "rpc.call");
  EXPECT_GE(client->end_ns, client->start_ns);

  // The page read inside sum() is a local span parented under the server
  // span — the nested level of the acceptance chain.
  const auto* page_read = find_span(server_spans, "storage.page_read");
  ASSERT_NE(page_read, nullptr);
  EXPECT_EQ(page_read->trace_id, server->trace_id);
  EXPECT_EQ(page_read->parent_id, server->span_id);

  dev.destroy();
}

TEST(Telemetry, MergedTimelineShowsCrossNodeChain) {
  TracingOn on;
  Cluster::Options opts;
  opts.machines = 2;
  opts.fabric = Cluster::FabricKind::kTcp;
  Cluster cluster(opts);

  auto dev = cluster.make_remote<storage::ArrayPageDevice>(
      1, "/tmp/oopp-telemetry-merge-" + std::to_string(::getpid()), 2, 2, 2,
      2);
  (void)dev.call<&storage::ArrayPageDevice::sum>(1);
  dev.destroy();

  const auto dir = std::filesystem::temp_directory_path() /
                   ("oopp-trace-test-" + std::to_string(::getpid()));
  ASSERT_EQ(cluster.dump_trace(dir), 2u);

  // The merger must stitch the per-node dumps into one causal chain:
  // client call -> remote sum -> nested page read.
  const std::string cmd =
      "python3 " OOPP_TRACE_TOOL
      " --check-chain rpc.call,oopp.storage.ArrayPageDevice.sum,"
      "storage.page_read " +
      dir.string();
  EXPECT_EQ(std::system(cmd.c_str()), 0) << cmd;
  std::filesystem::remove_all(dir);
}

// Every blocking wait — synchronous call<>, Future::get()/wait() — times
// itself into the rpc scope's blocking_wait_ns histogram (alongside the
// blocking_waits counter), so "how long do threads sit in remote waits"
// is answerable from the metrics report alone.
TEST(Telemetry, BlockingWaitsRecordDurationHistogram) {
  TracingOn on;
  Cluster cluster(2);
  auto s = cluster.make_remote<Sleepy>(1);
  EXPECT_EQ(s.call<&Sleepy::nap>(1), 1);
  auto f = s.async<&Sleepy::nap>(1);
  EXPECT_EQ(f.get(), 1);
  const std::string report = cluster.metrics_report();
  EXPECT_NE(report.find("blocking_wait_ns"), std::string::npos) << report;
  s.destroy();
}

TEST(Telemetry, GetForTimeoutRecordsTimeoutSpan) {
  TracingOn on;
  Cluster cluster(2);
  auto s = cluster.make_remote<Sleepy>(1);

  auto f = s.async<&Sleepy::nap>(200);
  EXPECT_THROW(f.get_for(std::chrono::milliseconds(5)), rpc::CallTimeout);

  const auto spans = spans_of(cluster, 0);
  const auto* timeout = find_span(spans, "rpc.timeout");
  ASSERT_NE(timeout, nullptr);
  EXPECT_EQ(timeout->status,
            static_cast<std::uint32_t>(net::CallStatus::kTimeout));
  EXPECT_NE(timeout->parent_id, 0u)
      << "timeout span must link to the call's client span";

  EXPECT_EQ(f.get(), 200);  // the call itself still completes
  s.destroy();
}

TEST(Telemetry, MetricsCountCallsAndPageIO) {
  auto& rpc_scope = telemetry::Metrics::scope_for("rpc");
  auto& storage_scope = telemetry::Metrics::scope_for("storage");
  const auto calls_before = rpc_scope.counter("call_issued").value();
  const auto reads_before = storage_scope.counter("page_reads").value();

  Cluster cluster(2);
  auto dev = cluster.make_remote<storage::ArrayPageDevice>(
      1, "/tmp/oopp-telemetry-metrics-" + std::to_string(::getpid()), 2, 2,
      2, 2);
  for (int i = 0; i < 5; ++i)
    (void)dev.call<&storage::ArrayPageDevice::sum>(0);
  dev.destroy();

  // Plain counters run even with tracing disabled (the default here).
  EXPECT_GE(rpc_scope.counter("call_issued").value(), calls_before + 5);
  EXPECT_GE(storage_scope.counter("page_reads").value(), reads_before + 5);

  const std::string report = cluster.metrics_report();
  EXPECT_NE(report.find("\"rpc\""), std::string::npos);
  EXPECT_NE(report.find("\"call_issued\""), std::string::npos);
  EXPECT_NE(report.find("\"storage\""), std::string::npos);
}

TEST(Telemetry, DisabledPathEmitsNoSpans) {
  telemetry::set_enabled(false);
  Cluster cluster(2);
  auto s = cluster.make_remote<Sleepy>(1);
  (void)s.call<&Sleepy::nap>(0);
  s.destroy();
  EXPECT_TRUE(spans_of(cluster, 0).empty());
  EXPECT_TRUE(spans_of(cluster, 1).empty());
}

TEST(Telemetry, HistogramPercentilesAreMonotone) {
  telemetry::Histogram h;
  for (std::uint64_t v : {100, 200, 400, 800, 1600, 3200, 6400, 12800})
    h.record(v);
  EXPECT_EQ(h.count(), 8u);
  const auto p50 = h.percentile(0.50);
  const auto p95 = h.percentile(0.95);
  const auto p99 = h.percentile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GE(p99, 12800u) << "p99 upper bound must cover the max sample";
}

TEST(Telemetry, ErrorHierarchyCarriesNumericCodes) {
  EXPECT_EQ(oopp::Error("x").code(), net::CallStatus::kInternal);
  EXPECT_EQ(rpc::CallTimeout("t").code(), net::CallStatus::kTimeout);
  EXPECT_EQ(rpc::BadFrame("b").code(), net::CallStatus::kBadFrame);
  EXPECT_EQ(rpc::MethodNotFound("m").code(),
            net::CallStatus::kMethodNotFound);
  EXPECT_EQ(rpc::UnknownClass("u").code(), net::CallStatus::kUnknownClass);

  // Every subclass is catchable as the one base type.
  try {
    throw rpc::CallAborted("node shut down");
  } catch (const oopp::Error& e) {
    EXPECT_EQ(e.code(), net::CallStatus::kAborted);
    EXPECT_STREQ(e.code_name(), "aborted");
  }
}

}  // namespace
