// Concurrency stress tests: the runtime under load from many driver
// threads, deep async pipelines, interleaved create/destroy, mixed
// reentrant and queued traffic, and command-queue FIFO under contention.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

#include "core/oopp.hpp"
#include "telemetry/metrics.hpp"

using namespace oopp;

namespace {

class Cell {
 public:
  Cell() = default;
  explicit Cell(std::int64_t v) : value_(v) {}

  std::int64_t add(std::int64_t d) { return value_ += d; }
  std::int64_t value() const { return value_; }

  /// Appends through the command queue — used to check FIFO under load.
  std::uint64_t append(std::uint64_t x) {
    log_.push_back(x);
    return log_.size();
  }
  std::vector<std::uint64_t> log() const { return log_; }

  /// Reentrant read: runs concurrently with queued commands, so the state
  /// it touches must be synchronized — the framework contract for
  /// `reentrant` methods (hence the atomic value_).
  std::int64_t peek() const { return value_; }

 private:
  std::atomic<std::int64_t> value_{0};
  std::vector<std::uint64_t> log_;
};

}  // namespace

template <>
struct oopp::rpc::class_def<Cell> {
  static std::string name() { return "stress.Cell"; }
  using ctors = ctor_list<ctor<>, ctor<std::int64_t>>;
  template <class B>
  static void bind(B& b) {
    b.template method<&Cell::add>("add");
    b.template method<&Cell::value>("value");
    b.template method<&Cell::append>("append");
    b.template method<&Cell::log>("log");
    b.template method<&Cell::peek>("peek", reentrant);
  }
};

namespace {

TEST(Stress, ManyDriverThreadsSharedObject) {
  Cluster cluster(4);
  auto cell = cluster.make_remote<Cell>(2, 0);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 200;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto guard = cluster.use(static_cast<net::MachineId>(t % 4));
      for (int i = 0; i < kOpsPerThread; ++i)
        cell.call<&Cell::add>(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(cell.call<&Cell::value>(), kThreads * kOpsPerThread);
}

TEST(Stress, FifoHoldsPerClientUnderConcurrency) {
  // Each client appends its own tagged sequence to a private object; the
  // per-object command queue must keep each client's order intact.
  Cluster cluster(4);
  constexpr int kClients = 4;
  constexpr std::uint64_t kOps = 300;

  std::vector<remote_ptr<Cell>> cells;
  for (int c = 0; c < kClients; ++c)
    cells.push_back(cluster.make_remote<Cell>(
        static_cast<net::MachineId>((c + 1) % 4)));

  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto guard = cluster.use(static_cast<net::MachineId>(c % 4));
      std::vector<Future<std::uint64_t>> futs;
      futs.reserve(kOps);
      for (std::uint64_t i = 0; i < kOps; ++i)
        futs.push_back(cells[c].async<&Cell::append>(i));
      for (auto& f : futs) (void)f.get();
    });
  }
  for (auto& t : threads) t.join();

  for (int c = 0; c < kClients; ++c) {
    const auto log = cells[c].call<&Cell::log>();
    ASSERT_EQ(log.size(), kOps);
    for (std::uint64_t i = 0; i < kOps; ++i)
      ASSERT_EQ(log[i], i) << "client " << c << " position " << i;
  }
}

TEST(Stress, DeepAsyncPipeline) {
  Cluster cluster(3);
  auto cell = cluster.make_remote<Cell>(1, 0);
  constexpr int kDepth = 2000;
  std::vector<Future<std::int64_t>> futs;
  futs.reserve(kDepth);
  for (int i = 0; i < kDepth; ++i)
    futs.push_back(cell.async<&Cell::add>(1));
  // Results arrive FIFO: future i must read i+1.
  for (int i = 0; i < kDepth; ++i)
    ASSERT_EQ(futs[i].get(), i + 1);
}

TEST(Stress, CreateDestroyChurn) {
  Cluster cluster(4);
  constexpr int kRounds = 50;
  for (int r = 0; r < kRounds; ++r) {
    std::vector<remote_ptr<Cell>> cells;
    for (int i = 0; i < 8; ++i)
      cells.push_back(cluster.make_remote<Cell>(
          static_cast<net::MachineId>(i % 4), r));
    std::vector<Future<std::int64_t>> futs;
    for (auto& c : cells) futs.push_back(c.async<&Cell::add>(1));
    for (auto& f : futs) (void)f.get();
    std::vector<Future<void>> dels;
    for (auto& c : cells) dels.push_back(c.async_destroy());
    for (auto& d : dels) d.get();
  }
  // Everything cleaned up.
  const auto totals = cluster.stats().totals();
  EXPECT_EQ(totals.objects_spawned, totals.objects_destroyed + 0u);
  EXPECT_EQ(totals.objects_live, 0u);
}

TEST(Stress, ReentrantReadsDuringQueuedWrites) {
  Cluster cluster(2);
  auto cell = cluster.make_remote<Cell>(1, 0);
  std::atomic<bool> stop{false};

  std::thread reader([&] {
    auto guard = cluster.use(0);
    while (!stop.load()) {
      const auto v = cell.call<&Cell::peek>();
      ASSERT_GE(v, 0);
    }
  });

  std::vector<Future<std::int64_t>> futs;
  for (int i = 0; i < 500; ++i) futs.push_back(cell.async<&Cell::add>(1));
  for (auto& f : futs) (void)f.get();
  stop = true;
  reader.join();
  EXPECT_EQ(cell.call<&Cell::value>(), 500);
}

TEST(Stress, BarrierStorm) {
  Cluster cluster(4);
  ProcessGroup<Cell> group;
  for (int i = 0; i < 16; ++i)
    group.push_back(
        cluster.make_remote<Cell>(static_cast<net::MachineId>(i % 4)));
  for (int round = 0; round < 100; ++round) {
    auto futs = group.async<&Cell::add>(1);
    group.barrier();
    for (auto& f : futs) (void)f.get();
  }
  for (auto total : group.gather<&Cell::value>()) EXPECT_EQ(total, 100);
}

TEST(Stress, MixedWorkloadAcrossFabricTcp) {
  Cluster::Options opts;
  opts.machines = 3;
  opts.fabric = Cluster::FabricKind::kTcp;
  Cluster cluster(opts);

  std::vector<std::thread> threads;
  std::atomic<std::int64_t> grand_total{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      auto guard = cluster.use(static_cast<net::MachineId>(t % 3));
      auto cell = oopp::make_remote<Cell>(
          static_cast<net::MachineId>((t + 1) % 3), 0);
      std::int64_t last = 0;
      for (int i = 0; i < 100; ++i) last = cell.call<&Cell::add>(1);
      grand_total.fetch_add(last);
      cell.destroy();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(grand_total.load(), 400);
}

TEST(Stress, LargePayloadsConcurrently) {
  Cluster cluster(3);
  std::vector<remote_data<double>> arrays;
  for (int i = 0; i < 3; ++i)
    arrays.push_back(cluster.make_remote_array<double>(
        static_cast<net::MachineId>(i), 1 << 16));  // 512 KiB each

  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      auto guard = cluster.use(static_cast<net::MachineId>((t + 1) % 3));
      std::vector<double> buf(1 << 16, double(t + 1));
      for (int round = 0; round < 5; ++round) {
        arrays[t].assign(0, buf);
        auto back = arrays[t].to_vector();
        ASSERT_EQ(back.size(), buf.size());
        ASSERT_EQ(back[12345], double(t + 1));
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 0; t < 3; ++t)
    EXPECT_DOUBLE_EQ(arrays[t].sum(), double(t + 1) * (1 << 16));
}

TEST(Stress, MetricsCountersExactUnderConcurrency) {
  // Counters are relaxed atomics bumped from servant pools, receiver
  // threads, and driver threads at once — totals must still be exact.
  auto& scope = telemetry::Metrics::scope_for("stress_test");
  auto& ctr = scope.counter("adds");
  auto& hist = scope.histogram("add_ns");
  const auto ctr0 = ctr.value();
  const auto hist0 = hist.count();

  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        ctr.add(1);
        hist.record(static_cast<std::uint64_t>(t * kPerThread + i));
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(ctr.value() - ctr0, kThreads * kPerThread);
  EXPECT_EQ(hist.count() - hist0, kThreads * kPerThread);

  // RPC traffic from concurrent drivers lands in the verb counters too.
  auto& calls = telemetry::Metrics::scope_for("rpc").counter("call_issued");
  const auto calls0 = calls.value();
  Cluster cluster(2);
  auto cell = cluster.make_remote<Cell>(1, 0);
  std::vector<std::thread> drivers;
  for (int t = 0; t < 4; ++t) {
    drivers.emplace_back([&] {
      auto guard = cluster.use(0);
      for (int i = 0; i < 50; ++i) (void)cell.call<&Cell::add>(1);
    });
  }
  for (auto& t : drivers) t.join();
  EXPECT_EQ(cell.call<&Cell::value>(), 200);
  EXPECT_GE(calls.value() - calls0, 200u);
}

}  // namespace
