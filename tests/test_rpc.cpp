// RPC-layer tests against bare Nodes on an in-process fabric: spawn,
// dispatch, error propagation, process (FIFO) semantics, reentrant
// methods, nested calls, and the control plane.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/future.hpp"
#include "core/remote_ptr.hpp"
#include "net/inproc_fabric.hpp"
#include "rpc/binding.hpp"
#include "rpc/errors.hpp"
#include "rpc/node.hpp"

namespace rpc = oopp::rpc;
namespace net = oopp::net;
using oopp::Future;
using oopp::make_remote;
using oopp::remote_ptr;

namespace {

// ---------------------------------------------------------------------------
// Test servants
// ---------------------------------------------------------------------------

class Counter {
 public:
  explicit Counter(int start) : value_(start) {}
  Counter(int start, std::string tag) : value_(start), tag_(std::move(tag)) {}

  int increment(int by) { return value_ += by; }
  int value() const { return value_; }
  std::string tag() const { return tag_; }
  void boom(const std::string& msg) { throw std::runtime_error(msg); }

  /// Sleeps, then records completion order — used to verify FIFO process
  /// semantics.
  int slow_mark(int mark, int sleep_ms) {
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    order_.push_back(mark);
    return mark;
  }
  std::vector<int> order() const { return order_; }

  /// Reentrant probe: returns even while the object is busy in slow_mark.
  int probe() const { return 123; }

 private:
  int value_ = 0;
  std::string tag_;
  std::vector<int> order_;
};

struct DtorFlag {
  static std::atomic<int> destroyed;
  DtorFlag() = default;
  ~DtorFlag() { destroyed.fetch_add(1); }
  int poke() { return 1; }
};
std::atomic<int> DtorFlag::destroyed{0};

/// A different class that (wrongly) claims Counter's wire name.
class CounterImposter {
 public:
  CounterImposter() = default;
  int zero() const { return 0; }
};

/// Forwards calls to another Counter — exercises nested servant→servant
/// remote calls (a servant blocked awaiting a second machine).
class Forwarder {
 public:
  explicit Forwarder(remote_ptr<Counter> target) : target_(target) {}
  int add_via(int by) { return target_.call<&Counter::increment>(by); }

 private:
  remote_ptr<Counter> target_;
};

}  // namespace

template <>
struct oopp::rpc::class_def<Counter> {
  static std::string name() { return "test.Counter"; }
  using ctors = ctor_list<ctor<int>, ctor<int, std::string>>;
  template <class B>
  static void bind(B& b) {
    b.template method<&Counter::increment>("increment");
    b.template method<&Counter::value>("value");
    b.template method<&Counter::tag>("tag");
    b.template method<&Counter::boom>("boom");
    b.template method<&Counter::slow_mark>("slow_mark");
    b.template method<&Counter::order>("order");
    b.template method<&Counter::probe>("probe", reentrant);
  }
};

template <>
struct oopp::rpc::class_def<DtorFlag> {
  static std::string name() { return "test.DtorFlag"; }
  using ctors = ctor_list<ctor<>>;
  template <class B>
  static void bind(B& b) {
    b.template method<&DtorFlag::poke>("poke");
  }
};

template <>
struct oopp::rpc::class_def<CounterImposter> {
  static std::string name() { return "test.Counter"; }  // deliberate clash
  using ctors = ctor_list<ctor<>>;
  template <class B>
  static void bind(B& b) {
    b.template method<&CounterImposter::zero>("zero");
  }
};

template <>
struct oopp::rpc::class_def<Forwarder> {
  static std::string name() { return "test.Forwarder"; }
  using ctors = ctor_list<ctor<remote_ptr<Counter>>>;
  template <class B>
  static void bind(B& b) {
    b.template method<&Forwarder::add_via>("add_via");
  }
};

namespace {

/// Two bare nodes on an in-process fabric; the test thread runs in node
/// 0's context (the driver machine).
class RpcTest : public ::testing::Test {
 protected:
  RpcTest()
      : fabric_(3),
        n0_(0, fabric_),
        n1_(1, fabric_),
        n2_(2, fabric_),
        guard_(&n0_) {
    n0_.start();
    n1_.start();
    n2_.start();
  }
  ~RpcTest() override {
    // Staged shutdown mirroring Cluster.
    for (auto* n : {&n0_, &n1_, &n2_}) n->stop_receiving();
    for (auto* n : {&n0_, &n1_, &n2_}) n->fail_pending();
    for (auto* n : {&n0_, &n1_, &n2_}) n->stop_pool();
  }

  net::InProcFabric fabric_;
  rpc::Node n0_, n1_, n2_;
  rpc::Node::ContextGuard guard_;
};

TEST_F(RpcTest, SpawnAndCall) {
  auto c = make_remote<Counter>(1, 10);
  EXPECT_EQ(c.machine(), 1u);
  EXPECT_TRUE(c.valid());
  EXPECT_EQ(c.call<&Counter::value>(), 10);
  EXPECT_EQ(c.call<&Counter::increment>(5), 15);
  EXPECT_EQ(c.call<&Counter::value>(), 15);
}

TEST_F(RpcTest, SecondConstructorSelectedByOverloadResolution) {
  auto c = make_remote<Counter>(1, 3, std::string("hello"));
  EXPECT_EQ(c.call<&Counter::value>(), 3);
  EXPECT_EQ(c.call<&Counter::tag>(), "hello");
}

TEST_F(RpcTest, ArgumentConversionLikeLocalCall) {
  // const char* converts to std::string, short to int.
  auto c = make_remote<Counter>(1, short{2}, "tag");
  EXPECT_EQ(c.call<&Counter::tag>(), "tag");
}

TEST_F(RpcTest, SelfMachineSpawn) {
  auto c = make_remote<Counter>(0, 7);  // same machine as driver context
  EXPECT_EQ(c.call<&Counter::value>(), 7);
}

TEST_F(RpcTest, AsyncSplitLoop) {
  std::vector<remote_ptr<Counter>> cs;
  for (int i = 0; i < 8; ++i)
    cs.push_back(make_remote<Counter>(i % 3, i));
  std::vector<Future<int>> futs;
  futs.reserve(cs.size());
  for (auto& c : cs) futs.push_back(c.async<&Counter::increment>(100));
  for (int i = 0; i < 8; ++i) EXPECT_EQ(futs[i].get(), i + 100);
}

TEST_F(RpcTest, RemoteExceptionPropagates) {
  auto c = make_remote<Counter>(2, 0);
  try {
    c.call<&Counter::boom>("kaboom");
    FAIL() << "expected RemoteError";
  } catch (const rpc::RemoteError& e) {
    EXPECT_EQ(e.machine(), 2u);
    EXPECT_EQ(e.original_what(), "kaboom");
    EXPECT_NE(std::string(e.what()).find("kaboom"), std::string::npos);
  }
  // The object survives its exception — still callable.
  EXPECT_EQ(c.call<&Counter::value>(), 0);
}

TEST_F(RpcTest, DestroyTerminatesProcess) {
  DtorFlag::destroyed = 0;
  auto d = make_remote<DtorFlag>(1);
  EXPECT_EQ(d.call<&DtorFlag::poke>(), 1);
  d.destroy();
  EXPECT_EQ(DtorFlag::destroyed.load(), 1);
  EXPECT_THROW(d.call<&DtorFlag::poke>(), rpc::ObjectNotFound);
  EXPECT_THROW(d.destroy(), rpc::ObjectNotFound);
}

TEST_F(RpcTest, DestroyCompletesOutstandingCommandsFirst) {
  auto c = make_remote<Counter>(1, 0);
  auto slow = c.async<&Counter::slow_mark>(1, 50);
  auto destroyed = c.async_destroy();
  destroyed.get();
  EXPECT_EQ(slow.get(), 1);  // completed, not aborted
}

TEST_F(RpcTest, FifoProcessSemantics) {
  auto c = make_remote<Counter>(1, 0);
  // Issue a slow command then fast ones; FIFO means completion order is
  // issue order even though the fast ones would finish first if parallel.
  auto f1 = c.async<&Counter::slow_mark>(1, 40);
  auto f2 = c.async<&Counter::slow_mark>(2, 0);
  auto f3 = c.async<&Counter::slow_mark>(3, 0);
  f1.get();
  f2.get();
  f3.get();
  EXPECT_EQ(c.call<&Counter::order>(), (std::vector<int>{1, 2, 3}));
}

TEST_F(RpcTest, ReentrantMethodRunsWhileObjectBusy) {
  auto c = make_remote<Counter>(1, 0);
  auto slow = c.async<&Counter::slow_mark>(1, 200);
  // probe() is reentrant: it must answer long before slow_mark finishes.
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(c.call<&Counter::probe>(), 123);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, std::chrono::milliseconds(150));
  slow.get();
}

TEST_F(RpcTest, PingDrainsQueue) {
  auto c = make_remote<Counter>(1, 0);
  auto slow = c.async<&Counter::slow_mark>(7, 60);
  c.ping();  // must wait for slow_mark
  EXPECT_EQ(c.call<&Counter::order>(), std::vector<int>{7});
  slow.get();
}

TEST_F(RpcTest, NestedServantToServantCall) {
  auto target = make_remote<Counter>(2, 100);
  auto fwd = make_remote<Forwarder>(1, target);
  EXPECT_EQ(fwd.call<&Forwarder::add_via>(11), 111);
  EXPECT_EQ(target.call<&Counter::value>(), 111);
}

TEST_F(RpcTest, DeepNestedForwardingChain) {
  // Chain of forwarders across machines; each hop is a servant blocked on
  // the next — exercises the elastic pools hard.
  auto target = make_remote<Counter>(0, 0);
  auto hop1 = make_remote<Forwarder>(1, target);
  EXPECT_EQ(hop1.call<&Forwarder::add_via>(1), 1);
  EXPECT_EQ(hop1.call<&Forwarder::add_via>(2), 3);
}

TEST_F(RpcTest, UnknownMethodIdRejected) {
  auto c = make_remote<Counter>(1, 0);
  // Craft a raw call with a method id the class never bound.
  EXPECT_THROW(n0_.call_raw(1, c.id(), net::method_id("no.such.method"), {}),
               rpc::MethodNotFound);
}

TEST_F(RpcTest, CorruptArgumentsRejected) {
  auto c = make_remote<Counter>(1, 0);
  // increment(int) expects 4 bytes; send none.
  EXPECT_THROW(n0_.call_raw(1, c.id(),
                            rpc::method_registry<&Counter::increment>::id, {}),
               rpc::BadFrame);
}

TEST_F(RpcTest, UnknownClassInSpawnRejected) {
  oopp::serial::OArchive oa;
  oa(std::string("no.such.Class"), std::uint32_t{0});
  EXPECT_THROW(n0_.call_raw(1, net::kNodeObject,
                            net::method_id(rpc::kSpawnMethod), oa.take()),
               rpc::UnknownClass);
}

TEST_F(RpcTest, OutOfRangeCtorIndexRejected) {
  rpc::ensure_registered<Counter>();
  oopp::serial::OArchive oa;
  oa(std::string("test.Counter"), std::uint32_t{99}, 7);
  EXPECT_THROW(n0_.call_raw(1, net::kNodeObject,
                            net::method_id(rpc::kSpawnMethod), oa.take()),
               rpc::RemoteError);
}

TEST_F(RpcTest, TruncatedSpawnPayloadIsBadFrame) {
  rpc::ensure_registered<Counter>();
  oopp::serial::OArchive oa;
  oa(std::string("test.Counter"), std::uint32_t{0});  // missing int arg
  EXPECT_THROW(n0_.call_raw(1, net::kNodeObject,
                            net::method_id(rpc::kSpawnMethod), oa.take()),
               rpc::BadFrame);
}

TEST_F(RpcTest, PassivateNonPersistentClassRejected) {
  auto c = make_remote<Counter>(1, 0);  // Counter has no persistence hooks
  oopp::serial::OArchive oa;
  oa(static_cast<std::uint64_t>(c.id()), std::uint8_t{0});
  try {
    n0_.call_raw(1, net::kNodeObject, net::method_id(rpc::kPassivateMethod),
                 oa.take());
    FAIL() << "expected oopp::Error";
  } catch (const oopp::Error& e) {
    EXPECT_EQ(e.code(), net::CallStatus::kInternal);
    EXPECT_NE(std::string(e.what()).find("not persistent"),
              std::string::npos);
  }
  // Still alive and serving.
  EXPECT_EQ(c.call<&Counter::value>(), 0);
}

TEST_F(RpcTest, RestoreUnknownClassRejected) {
  oopp::serial::OArchive oa;
  oa(std::string("no.such.Class"), std::vector<std::byte>{});
  EXPECT_THROW(n0_.call_raw(1, net::kNodeObject,
                            net::method_id(rpc::kRestoreMethod), oa.take()),
               rpc::UnknownClass);
}

TEST_F(RpcTest, UnknownControlMethodRejected) {
  EXPECT_THROW(n0_.call_raw(1, net::kNodeObject,
                            net::method_id("oopp.node.nonsense"), {}),
               rpc::MethodNotFound);
}

TEST_F(RpcTest, DestroyUnknownObjectIsObjectNotFound) {
  oopp::serial::OArchive oa;
  oa(std::uint64_t{999999});
  EXPECT_THROW(n0_.call_raw(1, net::kNodeObject,
                            net::method_id(rpc::kDestroyMethod), oa.take()),
               rpc::ObjectNotFound);
}

TEST_F(RpcTest, StatsControlCountsObjects) {
  auto fetch = [&] {
    auto resp = n0_.call_raw(1, net::kNodeObject,
                             net::method_id(rpc::kStatsMethod), {});
    return oopp::serial::IArchive(resp.payload).read<rpc::NodeStats>();
  };
  const auto before = fetch();
  auto c1 = make_remote<Counter>(1, 0);
  auto c2 = make_remote<Counter>(1, 0);
  c1.call<&Counter::increment>(1);
  try {
    c1.call<&Counter::boom>("x");
  } catch (const rpc::RemoteError&) {
  }
  const auto after = fetch();
  EXPECT_EQ(after.objects_live, before.objects_live + 2);
  EXPECT_EQ(after.objects_spawned, before.objects_spawned + 2);
  EXPECT_GE(after.requests_served, before.requests_served + 2);
  EXPECT_EQ(after.remote_exceptions, before.remote_exceptions + 1);
  c1.destroy();
  c2.destroy();
  const auto final_stats = fetch();
  EXPECT_EQ(final_stats.objects_destroyed, before.objects_destroyed + 2);
  EXPECT_EQ(final_stats.objects_live, before.objects_live);
  EXPECT_GT(final_stats.pool_threads, 0u);
}

TEST_F(RpcTest, ManyObjectsManyCalls) {
  std::vector<remote_ptr<Counter>> cs;
  for (int i = 0; i < 50; ++i)
    cs.push_back(make_remote<Counter>(i % 3, 0));
  std::vector<Future<int>> futs;
  for (int round = 0; round < 10; ++round)
    for (auto& c : cs) futs.push_back(c.async<&Counter::increment>(1));
  for (auto& f : futs) f.get();
  for (auto& c : cs) EXPECT_EQ(c.call<&Counter::value>(), 10);
}

TEST_F(RpcTest, FutureTimeoutDoesNotCancel) {
  auto c = make_remote<Counter>(1, 0);
  auto fut = c.async<&Counter::slow_mark>(9, 80);
  // Too-short deadline: timeout, but the method keeps running.
  EXPECT_THROW((void)fut.get_for(std::chrono::milliseconds(5)),
               rpc::CallTimeout);
  // Patience pays: the same future later yields the result.
  EXPECT_EQ(fut.get_for(std::chrono::seconds(10)), 9);
  EXPECT_EQ(c.call<&Counter::order>(), std::vector<int>{9});
}

TEST_F(RpcTest, FutureWaitFor) {
  auto c = make_remote<Counter>(1, 0);
  auto fut = c.async<&Counter::slow_mark>(1, 50);
  EXPECT_FALSE(fut.wait_for(std::chrono::milliseconds(1)));
  EXPECT_TRUE(fut.wait_for(std::chrono::seconds(10)));
  EXPECT_EQ(fut.get(), 1);
}

TEST_F(RpcTest, WireNameCollisionDetected) {
  rpc::ensure_registered<Counter>();           // claims "test.Counter"
  EXPECT_THROW(rpc::ensure_registered<CounterImposter>(), oopp::check_error);
}

TEST_F(RpcTest, NullRemotePtrChecks) {
  remote_ptr<Counter> null;
  EXPECT_FALSE(null.valid());
  EXPECT_THROW(null.call<&Counter::value>(), oopp::check_error);
}

}  // namespace
