// Unit tests for the serialization substrate: round trips for every
// supported shape, truncation safety, and the symmetric user-type visitor.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <deque>
#include <limits>
#include <list>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <unordered_set>
#include <vector>

#include "serial/archive.hpp"
#include "util/prng.hpp"

namespace serial = oopp::serial;

namespace {

template <class T>
T round_trip(const T& v) {
  serial::OArchive oa;
  oa(v);
  serial::IArchive ia(oa.bytes());
  T out{};
  ia(out);
  EXPECT_TRUE(ia.exhausted()) << "decoder left bytes behind";
  return out;
}

struct Inner {
  int a = 0;
  std::string b;
  bool operator==(const Inner&) const = default;
};

template <class Ar>
void oopp_serialize(Ar& ar, Inner& v) {
  ar(v.a, v.b);
}

struct Outer {
  std::vector<Inner> items;
  std::optional<double> opt;
  bool operator==(const Outer&) const = default;
};

template <class Ar>
void oopp_serialize(Ar& ar, Outer& v) {
  ar(v.items, v.opt);
}

TEST(Serial, ScalarRoundTrips) {
  EXPECT_EQ(round_trip<std::int8_t>(-7), -7);
  EXPECT_EQ(round_trip<std::uint8_t>(0xff), 0xff);
  EXPECT_EQ(round_trip<std::int32_t>(-123456789), -123456789);
  EXPECT_EQ(round_trip<std::uint64_t>(0xdeadbeefcafebabeULL),
            0xdeadbeefcafebabeULL);
  EXPECT_EQ(round_trip<bool>(true), true);
  EXPECT_DOUBLE_EQ(round_trip<double>(3.14159265358979), 3.14159265358979);
  EXPECT_FLOAT_EQ(round_trip<float>(2.71828f), 2.71828f);
}

TEST(Serial, ScalarEdgeValues) {
  EXPECT_EQ(round_trip(std::numeric_limits<std::int64_t>::min()),
            std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(round_trip(std::numeric_limits<std::int64_t>::max()),
            std::numeric_limits<std::int64_t>::max());
  EXPECT_TRUE(std::isnan(round_trip(std::nan(""))));
  EXPECT_EQ(round_trip(std::numeric_limits<double>::infinity()),
            std::numeric_limits<double>::infinity());
  EXPECT_EQ(round_trip(-0.0), 0.0);
  EXPECT_TRUE(std::signbit(round_trip(-0.0)));
}

TEST(Serial, Strings) {
  EXPECT_EQ(round_trip(std::string()), "");
  EXPECT_EQ(round_trip(std::string("hello")), "hello");
  std::string with_nuls("a\0b\0c", 5);
  EXPECT_EQ(round_trip(with_nuls), with_nuls);
  EXPECT_EQ(round_trip(std::string(100000, 'x')).size(), 100000u);
}

TEST(Serial, Vectors) {
  EXPECT_EQ(round_trip(std::vector<int>{}), std::vector<int>{});
  EXPECT_EQ(round_trip(std::vector<int>{1, 2, 3}), (std::vector<int>{1, 2, 3}));
  std::vector<double> big(4096);
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = 0.5 * double(i);
  EXPECT_EQ(round_trip(big), big);
  EXPECT_EQ(round_trip(std::vector<std::string>{"a", "", "ccc"}),
            (std::vector<std::string>{"a", "", "ccc"}));
}

TEST(Serial, NestedContainers) {
  std::vector<std::vector<int>> vv{{1}, {}, {2, 3}};
  EXPECT_EQ(round_trip(vv), vv);
  std::map<std::string, std::vector<double>> m{{"x", {1.0}}, {"y", {}}};
  EXPECT_EQ(round_trip(m), m);
}

TEST(Serial, SetsDequesListsComplex) {
  std::set<int> s{3, 1, 2};
  EXPECT_EQ(round_trip(s), s);
  std::unordered_set<std::string> us{"a", "bb", "ccc"};
  EXPECT_EQ(round_trip(us), us);
  std::deque<double> d{1.5, -2.5, 0.0};
  EXPECT_EQ(round_trip(d), d);
  std::list<int> l{7, 8, 9};
  EXPECT_EQ(round_trip(l), l);
  std::complex<double> c{1.25, -3.5};
  EXPECT_EQ(round_trip(c), c);
  std::vector<std::complex<double>> vc{{1, 2}, {3, 4}, {0, -1}};
  EXPECT_EQ(round_trip(vc), vc);
}

TEST(Serial, PairsTuplesArraysOptionals) {
  auto p = std::make_pair(std::string("k"), 42);
  EXPECT_EQ(round_trip(p), p);
  auto t = std::make_tuple(1, 2.5, std::string("three"));
  EXPECT_EQ(round_trip(t), t);
  std::array<int, 4> a{1, 2, 3, 4};
  EXPECT_EQ(round_trip(a), a);
  EXPECT_EQ(round_trip(std::optional<int>{}), std::optional<int>{});
  EXPECT_EQ(round_trip(std::optional<int>{7}), std::optional<int>{7});
  EXPECT_EQ(round_trip(std::optional<std::string>{"s"}),
            std::optional<std::string>{"s"});
}

TEST(Serial, UserTypesViaSymmetricVisitor) {
  Outer o{{{1, "one"}, {2, "two"}}, 2.5};
  EXPECT_EQ(round_trip(o), o);
  Outer empty{};
  EXPECT_EQ(round_trip(empty), empty);
}

TEST(Serial, TakeMovesBytesOutAndLeavesArchiveReusable) {
  serial::OArchive oa;
  oa(std::string("first"), 7);
  const auto ref = oa.bytes();  // copy for comparison
  auto moved = oa.take();
  EXPECT_EQ(moved, ref);
  EXPECT_EQ(oa.size(), 0u);

  // The emptied archive keeps encoding correctly.
  oa(std::string("second"));
  serial::IArchive ia(oa.bytes());
  EXPECT_EQ(ia.read<std::string>(), "second");
  EXPECT_TRUE(ia.exhausted());
}

TEST(Serial, ElementLoopReserveDoesNotChangeEncoding) {
  // The reserve-ahead in the element-loop writers is a pure capacity hint:
  // bulk container encodings must be byte-identical to element-at-a-time
  // writes of the same values.
  std::map<int, std::string> m{{1, "one"}, {2, "two"}, {3, "three"}};
  std::list<std::pair<int, int>> l{{1, 2}, {3, 4}};
  serial::OArchive bulk;
  bulk(m, l);

  serial::OArchive manual;
  manual(std::uint64_t{m.size()});
  for (const auto& [k, v] : m) manual(k, v);
  manual(std::uint64_t{l.size()});
  for (const auto& e : l) manual(e);

  EXPECT_EQ(bulk.bytes(), manual.bytes());
}

TEST(Serial, MultipleValuesInterleaved) {
  serial::OArchive oa;
  oa(42, std::string("mid"), 2.5);
  serial::IArchive ia(oa.bytes());
  EXPECT_EQ(ia.read<int>(), 42);
  EXPECT_EQ(ia.read<std::string>(), "mid");
  EXPECT_DOUBLE_EQ(ia.read<double>(), 2.5);
  EXPECT_TRUE(ia.exhausted());
}

TEST(Serial, TruncatedInputThrows) {
  serial::OArchive oa;
  oa(std::string("hello world"));
  auto bytes = oa.bytes();
  bytes.resize(bytes.size() - 3);
  serial::IArchive ia(bytes);
  EXPECT_THROW(ia.read<std::string>(), serial::serial_error);
}

TEST(Serial, HugeLengthPrefixRejectedBeforeAllocation) {
  // A corrupt frame claiming 2^60 elements must throw, not bad_alloc.
  serial::OArchive oa;
  oa(std::uint64_t{1} << 60);
  serial::IArchive ia(oa.bytes());
  EXPECT_THROW(ia.read<std::string>(), serial::serial_error);
  serial::IArchive ia2(oa.bytes());
  EXPECT_THROW(ia2.read<std::vector<double>>(), serial::serial_error);
}

TEST(Serial, EmptyArchiveReadThrows) {
  serial::IArchive ia(std::span<const std::byte>{});
  EXPECT_THROW((void)ia.read<int>(), serial::serial_error);
  EXPECT_TRUE(ia.exhausted());
}

TEST(Serial, WrongShapeDetectedByBoundsNotUB) {
  serial::OArchive oa;
  oa(std::uint32_t{7});
  serial::IArchive ia(oa.bytes());
  EXPECT_THROW((void)ia.read<std::uint64_t>(), serial::serial_error);
}

TEST(Serial, RawBytes) {
  const char raw[] = "rawbytes";
  serial::OArchive oa;
  oa.write_raw(raw, sizeof(raw));
  serial::IArchive ia(oa.bytes());
  char out[sizeof(raw)];
  ia.read_raw(out, sizeof(raw));
  EXPECT_STREQ(out, raw);
}

// ---------------------------------------------------------------------------
// serial::Bytes: ref-counted slices, splicing, zero-copy decode
// ---------------------------------------------------------------------------

std::vector<std::byte> pattern_bytes(std::size_t n) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<std::byte>((i * 7 + 3) & 0xff);
  return v;
}

TEST(SerialBytes, SubviewSharesStoreAndRejectsOverruns) {
  serial::Bytes b = serial::Bytes::adopt(pattern_bytes(64));
  EXPECT_EQ(b.size(), 64u);
  serial::Bytes sub = b.subview(8, 16);
  EXPECT_EQ(sub.size(), 16u);
  EXPECT_EQ(sub.store(), b.store());          // refcount bump, no copy
  EXPECT_EQ(sub.data(), b.data() + 8);        // aliases the same bytes
  EXPECT_TRUE(b.subview(60, 8).empty());      // past the end → empty
  EXPECT_TRUE(serial::Bytes{}.empty());
  EXPECT_EQ(serial::Bytes{}.data(), nullptr);
}

TEST(SerialBytes, InlineBelowSpliceThresholdMatchesVectorWire) {
  // A tiny Bytes is inlined: the archive stays flat and the encoding is
  // byte-identical to a std::vector<std::byte> of the same content.
  const auto payload = pattern_bytes(32);
  serial::OArchive as_bytes;
  as_bytes(serial::Bytes::adopt(payload));
  EXPECT_FALSE(as_bytes.has_segments());
  serial::OArchive as_vector;
  as_vector(payload);
  EXPECT_EQ(as_bytes.bytes(), as_vector.bytes());

  serial::IArchive ia(as_bytes.bytes());
  EXPECT_EQ(ia.read<std::vector<std::byte>>(), payload);
}

TEST(SerialBytes, LargeSliceSplicesAndFlattensInStreamOrder) {
  const auto payload = pattern_bytes(serial::OArchive::kSpliceThreshold);
  serial::OArchive oa;
  oa(std::string("head"));
  oa(serial::Bytes::adopt(payload));
  oa(std::string("tail"));
  EXPECT_TRUE(oa.has_segments());
  EXPECT_THROW((void)oa.bytes(), serial::serial_error);

  // take() flattens segments back into one stream whose decode matches.
  const auto flat = oa.take();
  serial::IArchive ia(flat);
  EXPECT_EQ(ia.read<std::string>(), "head");
  EXPECT_EQ(ia.read<std::vector<std::byte>>(), payload);
  EXPECT_EQ(ia.read<std::string>(), "tail");
  EXPECT_TRUE(ia.exhausted());
}

TEST(SerialBytes, TakeSegmentsCarriesTheOriginalAllocation) {
  const auto payload = pattern_bytes(1024);
  serial::Bytes big = serial::Bytes::adopt(payload);
  const std::byte* source = big.data();
  serial::OArchive oa;
  oa(std::uint32_t{5});
  oa(big);
  auto segs = oa.take_segments();
  ASSERT_GE(segs.size(), 2u);
  // One of the segments IS the spliced slice — same allocation, not a
  // copy (serialize once at the source).
  bool found = false;
  for (const auto& s : segs) found |= (s.data() == source);
  EXPECT_TRUE(found);
}

TEST(SerialBytes, DecodeOverBackingStoreAliasesInsteadOfCopying) {
  // Encode a large Bytes, flatten to one allocation (as the transport
  // would), then decode over that allocation as the backing store: the
  // decoded Bytes must be a view into it, not a fresh copy.
  const auto payload = pattern_bytes(512);
  serial::OArchive oa;
  oa(serial::Bytes::adopt(payload));
  auto store =
      std::make_shared<const std::vector<std::byte>>(oa.take());
  serial::IArchive ia(std::span<const std::byte>(store->data(),
                                                 store->size()),
                      store, 0);
  serial::Bytes out;
  ia.read_into(out);
  EXPECT_EQ(out.size(), payload.size());
  EXPECT_EQ(out.store(), store);
  EXPECT_GE(out.data(), store->data());
  EXPECT_LE(out.data() + out.size(), store->data() + store->size());
  EXPECT_EQ(std::memcmp(out.data(), payload.data(), payload.size()), 0);

  // Without a backing store the same decode falls back to a copy.
  serial::IArchive plain(*store);
  serial::Bytes copied;
  plain.read_into(copied);
  EXPECT_EQ(copied.size(), payload.size());
  EXPECT_NE(copied.store(), store);
}

// Property test: random nested structures survive a round trip.
struct RandomBlob {
  std::vector<std::uint32_t> ints;
  std::string text;
  std::map<int, double> table;
  std::optional<std::pair<int, std::string>> tail;
  bool operator==(const RandomBlob&) const = default;
};

template <class Ar>
void oopp_serialize(Ar& ar, RandomBlob& v) {
  ar(v.ints, v.text, v.table, v.tail);
}

class SerialProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SerialProperty, RandomBlobRoundTrip) {
  oopp::Xoshiro256 rng(GetParam());
  RandomBlob b;
  const auto n_ints = rng.below(200);
  for (std::uint64_t i = 0; i < n_ints; ++i)
    b.ints.push_back(static_cast<std::uint32_t>(rng()));
  const auto n_text = rng.below(500);
  for (std::uint64_t i = 0; i < n_text; ++i)
    b.text.push_back(static_cast<char>(rng.below(256)));
  const auto n_tab = rng.below(50);
  for (std::uint64_t i = 0; i < n_tab; ++i)
    b.table[static_cast<int>(rng() % 1000)] = rng.uniform();
  if (rng.below(2) == 0)
    b.tail = {static_cast<int>(rng()), std::string("tail")};
  EXPECT_EQ(round_trip(b), b);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerialProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// Fuzz property: any truncation or byte-corruption of a valid archive must
// either decode (possibly to different values) or throw serial_error —
// never crash, hang, or allocate absurdly.
class SerialFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SerialFuzz, TruncationAndCorruptionAreSafe) {
  oopp::Xoshiro256 rng(GetParam());
  RandomBlob b;
  for (std::uint64_t i = 0, n = rng.below(64); i < n; ++i)
    b.ints.push_back(static_cast<std::uint32_t>(rng()));
  b.text.assign(rng.below(100), 'x');
  for (std::uint64_t i = 0, n = rng.below(20); i < n; ++i)
    b.table[int(rng() % 100)] = rng.uniform();
  const auto bytes = serial::to_bytes(b);

  // Truncations.
  for (int t = 0; t < 32; ++t) {
    auto cut = bytes;
    cut.resize(rng.below(bytes.size() + 1));
    serial::IArchive ia(cut);
    try {
      RandomBlob out;
      ia(out);
    } catch (const serial::serial_error&) {
    }
  }
  // Single-byte corruptions.
  for (int t = 0; t < 32; ++t) {
    auto bad = bytes;
    bad[rng.below(bad.size())] ^= static_cast<std::byte>(1 + rng.below(255));
    serial::IArchive ia(bad);
    try {
      RandomBlob out;
      ia(out);
    } catch (const serial::serial_error&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerialFuzz,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707,
                                           808));

}  // namespace
