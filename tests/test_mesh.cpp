// Multi-OS-process deployment test: the driver (this test) is machine 0;
// machines 1 and 2 are real separate processes running the oopp_noded
// daemon, reached over TCP.  Remote construction, method execution,
// process groups and cross-process passivation/activation must all work
// exactly as in the single-process fabrics.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <fstream>
#include <thread>

#include "coll/collectives.hpp"
#include "core/oopp.hpp"
#include "fft/fft3d.hpp"
#include "fft/fft_worker.hpp"
#include "storage/page_device.hpp"
#include "util/prng.hpp"

#ifndef OOPP_NODED_PATH
#error "OOPP_NODED_PATH must be defined by the build"
#endif

using namespace oopp;

namespace {

std::uint16_t grab_free_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const auto port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

class MeshDeployment : public ::testing::Test {
 protected:
  static constexpr int kMachines = 3;  // 0 = driver, 1..2 = daemons

  void SetUp() override {
    endpoints_file_ = "/tmp/oopp-mesh-" + std::to_string(::getpid()) +
                      "-" + std::to_string(counter_++) + ".endpoints";
    std::ofstream out(endpoints_file_);
    for (int m = 0; m < kMachines; ++m) {
      ports_.push_back(grab_free_port());
      out << "127.0.0.1 " << ports_.back() << "\n";
    }
    out.close();

    for (int m = 1; m < kMachines; ++m) {
      const pid_t pid = ::fork();
      ASSERT_GE(pid, 0);
      if (pid == 0) {
        const std::string id = std::to_string(m);
        ::execl(OOPP_NODED_PATH, "oopp_noded", id.c_str(),
                endpoints_file_.c_str(), static_cast<char*>(nullptr));
        ::_exit(127);  // exec failed
      }
      daemons_.push_back(pid);
    }

    Cluster::Options opts;
    opts.mesh_endpoints = net::load_endpoints(endpoints_file_);
    opts.local_machine = 0;
    cluster_ = std::make_unique<Cluster>(opts);
  }

  void TearDown() override {
    if (cluster_) {
      for (int m = 1; m < kMachines; ++m) cluster_->request_shutdown(m);
      cluster_.reset();
    }
    for (pid_t pid : daemons_) {
      int status = 0;
      ::waitpid(pid, &status, 0);
      EXPECT_TRUE(WIFEXITED(status));
      EXPECT_EQ(WEXITSTATUS(status), 0);
    }
    ::unlink(endpoints_file_.c_str());
  }

  static inline int counter_ = 0;
  std::string endpoints_file_;
  std::vector<std::uint16_t> ports_;
  std::vector<pid_t> daemons_;
  std::unique_ptr<Cluster> cluster_;
};

TEST_F(MeshDeployment, RemoteObjectsAcrossOsProcesses) {
  EXPECT_EQ(cluster_->size(), 3u);
  EXPECT_TRUE(cluster_->is_local(0));
  EXPECT_FALSE(cluster_->is_local(1));

  // Remote data block in another OS process.
  auto data = cluster_->make_remote_array<double>(1, 256);
  data[7] = 3.1415;
  EXPECT_DOUBLE_EQ(data[7], 3.1415);
  std::vector<double> bulk(256, 2.0);
  data.assign(0, bulk);
  EXPECT_DOUBLE_EQ(data.sum(), 512.0);

  // Exceptions cross process boundaries.
  EXPECT_THROW(data[999] = 0.0, rpc::RemoteError);

  // Destruction terminates the object in the daemon.
  data.destroy();
}

TEST_F(MeshDeployment, StorageDeviceInDaemon) {
  const std::string file =
      "/tmp/oopp-mesh-dev-" + std::to_string(::getpid());
  auto dev = cluster_->make_remote<storage::PageDevice>(2, file, 4, 512);
  storage::Page page(512);
  for (std::size_t i = 0; i < page.size(); ++i)
    page[i] = static_cast<std::uint8_t>(i * 7);
  dev.call<&storage::PageDevice::write>(page, 1);
  EXPECT_EQ(dev.call<&storage::PageDevice::read>(1), page);
  dev.destroy();
  ::unlink(file.c_str());
}

TEST_F(MeshDeployment, PassivateInOneProcessActivateInAnother) {
  auto v = cluster_->make_remote_array<double>(1, 16);
  v[3] = 42.5;
  cluster_->passivate(v.ptr(), "oopp://mesh/mover");
  auto revived =
      cluster_->lookup<RemoteVector<double>>("oopp://mesh/mover", 2);
  EXPECT_EQ(revived.machine(), 2u);
  EXPECT_DOUBLE_EQ(revived.call<&RemoteVector<double>::get>(3), 42.5);
  revived.destroy();
}

TEST_F(MeshDeployment, CollectivesSpanProcesses) {
  // A collective group with members in both daemons; tree ops recurse
  // across real process boundaries.
  namespace coll = oopp::coll;
  auto group = coll::make_group<double>(4, [](int i) {
    return static_cast<net::MachineId>(1 + (i % 2));
  });
  for (int i = 0; i < 4; ++i)
    group[i].call<&coll::CollWorker<double>::set_data>(
        std::vector<double>{double(i + 1)});
  auto total =
      coll::reduce(group, 0, coll::ReduceKind::kSum, coll::Topology::kTree);
  EXPECT_EQ(total, std::vector<double>{10.0});
  coll::broadcast(group, 2, std::vector<double>{7.0}, coll::Topology::kTree);
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(group[i].call<&coll::CollWorker<double>::data>(),
              std::vector<double>{7.0});
  group.destroy_all();
}

TEST_F(MeshDeployment, WatchdogProbesAcrossProcesses) {
  auto dog = cluster_->make_remote<Watchdog>(1, std::uint32_t{15});
  auto victim = cluster_->make_remote_array<double>(2, 8);
  dog.call<&Watchdog::watch>(victim.ptr().ref());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (dog.call<&Watchdog::rounds>() < 2 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  auto reports = dog.call<&Watchdog::status>();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].state, WatchState::kAlive);
  victim.destroy();
  const auto r0 = dog.call<&Watchdog::rounds>();
  while (dog.call<&Watchdog::rounds>() < r0 + 3 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(dog.call<&Watchdog::status>()[0].state, WatchState::kDead);
  dog.destroy();
}

TEST_F(MeshDeployment, FftGroupSpansProcesses) {
  // Workers in two daemon processes compute a distributed transform; the
  // all-to-all transpose crosses real process boundaries.
  const Extents3 e{8, 8, 8};
  fft::DistributedFFT3D dfft(e, 2, [](int w) {
    return static_cast<net::MachineId>(1 + (w % 2));
  });
  Xoshiro256 rng(3);
  std::vector<fft::cplx> x(static_cast<std::size_t>(e.volume()));
  for (auto& c : x) c = fft::cplx(rng.uniform(-1, 1), rng.uniform(-1, 1));
  auto expect = x;
  fft::fft3d_inplace(expect, e, -1);

  dfft.scatter(x);
  dfft.forward();
  auto got = dfft.gather();
  double err = 0.0;
  for (std::size_t i = 0; i < got.size(); ++i)
    err = std::max(err, std::abs(got[i] - expect[i]));
  EXPECT_LT(err, 1e-9);
  dfft.shutdown();
}

}  // namespace
