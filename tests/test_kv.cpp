// Key-value store tests: shard semantics, the client facade (hashing,
// split-loop multi ops, scans), chain replication consistency, failover
// (promote + re-backup), persistence of shards, serializable store
// handles, and a randomized consistency property against std::map.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "core/oopp.hpp"
#include "kv/kv_store.hpp"
#include "util/prng.hpp"

using namespace oopp;
using kv::KvShard;
using kv::KvStore;

namespace {

KvStore make_store(Cluster& cluster, int shards, bool replicate) {
  return KvStore::create(
      KvStore::Config{.shards = shards, .replicate = replicate},
      [&](int s) { return static_cast<net::MachineId>(s % cluster.size()); },
      [&](int s) {
        return static_cast<net::MachineId>((s + 1) % cluster.size());
      });
}

TEST(KvShard, BasicOpsThroughRemoteProtocol) {
  Cluster cluster(2);
  auto shard = cluster.make_remote<KvShard>(1);
  EXPECT_EQ(shard.call<&KvShard::get>("a"), std::nullopt);
  EXPECT_EQ(shard.call<&KvShard::put>("a", "1"), 1u);
  EXPECT_EQ(shard.call<&KvShard::put>("b", "2"), 2u);
  EXPECT_EQ(shard.call<&KvShard::get>("a"), std::optional<std::string>("1"));
  EXPECT_EQ(shard.call<&KvShard::size>(), 2u);
  EXPECT_TRUE(shard.call<&KvShard::erase>("a"));
  EXPECT_FALSE(shard.call<&KvShard::erase>("a"));
  EXPECT_EQ(shard.call<&KvShard::size>(), 1u);
  EXPECT_EQ(shard.call<&KvShard::version>(), 3u);
}

TEST(KvShard, ScanIsPrefixBoundedAndOrdered) {
  Cluster cluster(2);
  auto shard = cluster.make_remote<KvShard>(1);
  for (const char* k : {"user:3", "user:1", "admin:1", "user:2", "zeta"})
    shard.call<&KvShard::put>(k, "x");
  auto hits = shard.call<&KvShard::scan>("user:", std::uint64_t{10});
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0].first, "user:1");
  EXPECT_EQ(hits[2].first, "user:3");
  auto limited = shard.call<&KvShard::scan>("user:", std::uint64_t{2});
  EXPECT_EQ(limited.size(), 2u);
}

TEST(KvStore, PutGetEraseAcrossShards) {
  Cluster cluster(4);
  auto store = make_store(cluster, 4, false);
  for (int i = 0; i < 100; ++i)
    store.put("key" + std::to_string(i), "value" + std::to_string(i));
  EXPECT_EQ(store.size(), 100u);
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(store.get("key" + std::to_string(i)),
              std::optional<std::string>("value" + std::to_string(i)));
  EXPECT_EQ(store.get("missing"), std::nullopt);
  EXPECT_TRUE(store.erase("key42"));
  EXPECT_EQ(store.get("key42"), std::nullopt);
  EXPECT_EQ(store.size(), 99u);
  store.destroy();
}

TEST(KvStore, MultiOpsSplitLoop) {
  Cluster cluster(3);
  auto store = make_store(cluster, 6, false);
  std::vector<std::pair<std::string, std::string>> pairs;
  for (int i = 0; i < 200; ++i)
    pairs.emplace_back("k" + std::to_string(i), std::to_string(i * i));
  store.multi_put(pairs);

  std::vector<std::string> keys;
  for (int i = 0; i < 200; ++i) keys.push_back("k" + std::to_string(i));
  keys.push_back("absent");
  auto got = store.multi_get(keys);
  ASSERT_EQ(got.size(), 201u);
  for (int i = 0; i < 200; ++i)
    EXPECT_EQ(got[i], std::optional<std::string>(std::to_string(i * i)));
  EXPECT_EQ(got[200], std::nullopt);
  store.destroy();
}

TEST(KvStore, ScanMergesShards) {
  Cluster cluster(3);
  auto store = make_store(cluster, 5, false);
  for (int i = 0; i < 30; ++i)
    store.put("p:" + std::to_string(100 + i), "v");
  store.put("other", "v");
  auto hits = store.scan("p:");
  ASSERT_EQ(hits.size(), 30u);
  EXPECT_TRUE(std::is_sorted(hits.begin(), hits.end()));
  store.destroy();
}

TEST(KvStore, ReplicationKeepsBackupIdentical) {
  Cluster cluster(4);
  auto store = make_store(cluster, 3, true);
  for (int i = 0; i < 60; ++i)
    store.put("r" + std::to_string(i), std::to_string(i));
  for (int i = 0; i < 60; i += 3) store.erase("r" + std::to_string(i));

  for (int s = 0; s < store.shards(); ++s) {
    ASSERT_TRUE(store.backup(s).valid());
    auto primary_state = store.primary(s).call<&KvShard::dump>();
    auto backup_state = store.backup(s).call<&KvShard::dump>();
    EXPECT_EQ(primary_state, backup_state) << "shard " << s;
  }
  store.destroy();
}

TEST(KvStore, FailoverPromotesBackupWithoutDataLoss) {
  Cluster cluster(4);
  auto store = make_store(cluster, 2, true);
  for (int i = 0; i < 40; ++i)
    store.put("f" + std::to_string(i), std::to_string(i));

  // Machine failure: shard 0's primary process dies.
  store.primary(0).destroy();
  store.promote_backup(0);

  // Every key is still readable, and writes keep working.
  for (int i = 0; i < 40; ++i)
    EXPECT_EQ(store.get("f" + std::to_string(i)),
              std::optional<std::string>(std::to_string(i)));
  store.put("after-failover", "yes");
  EXPECT_EQ(store.get("after-failover"),
            std::optional<std::string>("yes"));

  // Restore redundancy with a fresh, bootstrapped backup.
  store.add_backup(0, 3);
  store.put("post-rebackup", "ok");
  auto p = store.primary(0).call<&KvShard::dump>();
  auto b = store.backup(0).call<&KvShard::dump>();
  EXPECT_EQ(p, b);
  store.destroy();
}

TEST(KvStore, ShardsPersistAndReactivate) {
  Cluster cluster(3);
  auto store = make_store(cluster, 1, false);
  store.put("deep", "thought");
  cluster.passivate(store.primary(0), "oopp://kv/shard0");
  auto revived = cluster.lookup<KvShard>("oopp://kv/shard0", 2);
  EXPECT_EQ(revived.call<&KvShard::get>("deep"),
            std::optional<std::string>("thought"));
  EXPECT_EQ(revived.call<&KvShard::version>(), 1u);
}

TEST(KvStore, HandleIsSerializable) {
  Cluster cluster(3);
  auto store = make_store(cluster, 3, false);
  store.put("shared", "state");
  // A serialized + deserialized handle reaches the same shards.
  auto bytes = serial::to_bytes(store);
  auto copy = serial::from_bytes<KvStore>(bytes);
  EXPECT_EQ(copy.get("shared"), std::optional<std::string>("state"));
  copy.put("via-copy", "x");
  EXPECT_EQ(store.get("via-copy"), std::optional<std::string>("x"));
  store.destroy();
}

class KvRandomOps : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KvRandomOps, MatchesReferenceMap) {
  Cluster cluster(4);
  auto store = make_store(cluster, 4, GetParam() % 2 == 0);
  Xoshiro256 rng(GetParam());
  std::map<std::string, std::string> model;

  for (int op = 0; op < 400; ++op) {
    const std::string key = "k" + std::to_string(rng.below(50));
    switch (rng.below(3)) {
      case 0: {
        const std::string value = "v" + std::to_string(rng());
        store.put(key, value);
        model[key] = value;
        break;
      }
      case 1: {
        const bool expect_there = model.erase(key) > 0;
        EXPECT_EQ(store.erase(key), expect_there);
        break;
      }
      default: {
        auto it = model.find(key);
        auto expect = it == model.end()
                          ? std::nullopt
                          : std::optional<std::string>(it->second);
        EXPECT_EQ(store.get(key), expect);
      }
    }
  }
  EXPECT_EQ(store.size(), model.size());
  auto all = store.scan("");
  EXPECT_EQ(all.size(), model.size());
  for (const auto& [k, v] : all) EXPECT_EQ(model.at(k), v);
  store.destroy();
}

INSTANTIATE_TEST_SUITE_P(Seeds, KvRandomOps,
                         ::testing::Values(7, 8, 9, 10, 11, 12));

}  // namespace
