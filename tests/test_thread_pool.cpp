// Unit tests for the elastic pool, including the property that matters for
// the runtime: tasks that block on other tasks' results never deadlock,
// because the pool grows while its workers are blocked.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <vector>

#include "util/thread_pool.hpp"

using oopp::ElasticPool;

namespace {

TEST(ElasticPool, RunsSubmittedTasks) {
  ElasticPool pool;
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&] { count.fetch_add(1); });
  pool.shutdown();
  EXPECT_EQ(count.load(), 100);
}

TEST(ElasticPool, ShutdownIsIdempotent) {
  ElasticPool pool;
  pool.submit([] {});
  pool.shutdown();
  pool.shutdown();
}

TEST(ElasticPool, SubmitAfterShutdownThrows) {
  ElasticPool pool;
  pool.shutdown();
  EXPECT_THROW(pool.submit([] {}), std::runtime_error);
}

TEST(ElasticPool, StartsWithMinThreads) {
  ElasticPool pool(ElasticPool::Options{.min_threads = 3, .max_threads = 8});
  EXPECT_EQ(pool.thread_count(), 3u);
}

TEST(ElasticPool, GrowsWhenWorkersBlock) {
  // Chain of dependent tasks: task i waits for promise i+1, which is only
  // fulfilled by a later task.  A fixed pool of 2 would deadlock at depth
  // 2; the elastic pool must complete the whole chain.
  constexpr int kDepth = 16;
  ElasticPool pool(
      ElasticPool::Options{.min_threads = 2, .max_threads = 64});
  std::vector<std::promise<void>> gates(kDepth + 1);
  gates[kDepth].set_value();
  std::atomic<int> completed{0};
  for (int i = 0; i < kDepth; ++i) {
    pool.submit([&, i] {
      gates[i + 1].get_future().wait();  // blocks until successor runs
      completed.fetch_add(1);
      gates[i].set_value();
    });
  }
  gates[0].get_future().wait();
  EXPECT_EQ(completed.load(), kDepth);
  EXPECT_GT(pool.thread_count(), 2u);
  pool.shutdown();
}

TEST(ElasticPool, SurplusWorkersRetire) {
  ElasticPool pool(ElasticPool::Options{
      .min_threads = 1,
      .max_threads = 32,
      .idle_timeout = std::chrono::milliseconds(20)});
  // Force growth with blocking tasks.
  std::promise<void> gate;
  auto fut = gate.get_future().share();
  for (int i = 0; i < 8; ++i)
    pool.submit([fut] { fut.wait(); });
  // Let the pool grow, then release.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const auto grown = pool.thread_count();
  EXPECT_GE(grown, 8u);
  gate.set_value();
  // Idle workers above min retire after the timeout.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (pool.thread_count() > 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_LE(pool.thread_count(), 2u);
  pool.shutdown();
}

TEST(ElasticPool, DrainsQueueOnShutdown) {
  std::atomic<int> count{0};
  {
    ElasticPool pool(ElasticPool::Options{.min_threads = 1, .max_threads = 1});
    for (int i = 0; i < 500; ++i)
      pool.submit([&] { count.fetch_add(1); });
  }  // destructor shuts down
  EXPECT_EQ(count.load(), 500);
}

TEST(ElasticPool, TasksRunCounter) {
  ElasticPool pool;
  for (int i = 0; i < 42; ++i) pool.submit([] {});
  pool.shutdown();
  EXPECT_EQ(pool.tasks_run(), 42u);
}

TEST(ElasticPool, RespectsMaxThreads) {
  ElasticPool pool(ElasticPool::Options{.min_threads = 1, .max_threads = 4});
  std::promise<void> gate;
  auto fut = gate.get_future().share();
  for (int i = 0; i < 32; ++i)
    pool.submit([fut] { fut.wait(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_LE(pool.thread_count(), 4u);
  gate.set_value();
  pool.shutdown();
}

TEST(ElasticPool, ParallelismAcrossManySubmitters) {
  ElasticPool pool(ElasticPool::Options{.min_threads = 2, .max_threads = 64});
  std::atomic<int> done{0};
  std::vector<std::thread> submitters;
  submitters.reserve(8);
  for (int t = 0; t < 8; ++t) {
    submitters.emplace_back([&] {
      for (int i = 0; i < 100; ++i)
        pool.submit([&] { done.fetch_add(1); });
    });
  }
  for (auto& t : submitters) t.join();
  pool.shutdown();
  EXPECT_EQ(done.load(), 800);
}

}  // namespace
