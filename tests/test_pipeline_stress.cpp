// Heavy overlap stress (ctest label: slow).  Exercises the full
// communication/computation pipeline at a size the regular suites avoid:
// the double-buffered out-of-core FFT over a tiny budget (maximum slab
// count, every read prefetched and every write behind by one slab), and
// several machines streaming through coherent caches with read-ahead and
// write-back while writers churn — the coherence protocol under real
// concurrency, not a scripted interleaving.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <numbers>
#include <thread>
#include <vector>

#include "array/array.hpp"
#include "array/block_storage.hpp"
#include "core/oopp.hpp"
#include "dsm/page_cache.hpp"
#include "fft/fft3d.hpp"
#include "fft/out_of_core.hpp"
#include "util/prng.hpp"

using namespace oopp;
namespace arr = oopp::array;
using dsm::CoherentDevice;
using dsm::PageCache;

namespace {

class PipelineStressTest : public ::testing::Test {
 protected:
  PipelineStressTest() : cluster_(4) {
    dir_ = std::filesystem::temp_directory_path() /
           ("oopp-pipe-stress-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter_++));
    std::filesystem::create_directories(dir_);
  }
  ~PipelineStressTest() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  arr::Array make_disk_array(const std::string& tag, const Extents3& n,
                             const Extents3& b, int devices) {
    const Extents3 grid{ceil_div(n.n1, b.n1), ceil_div(n.n2, b.n2),
                        ceil_div(n.n3, b.n3)};
    const arr::PageMapSpec spec{arr::PageMapKind::kRoundRobin};
    arr::BlockStorageConfig cfg;
    cfg.file_prefix = (dir_ / tag).string();
    cfg.devices = devices;
    cfg.pages_per_device =
        static_cast<std::int32_t>(spec.pages_per_device(grid, devices));
    cfg.n1 = static_cast<int>(b.n1);
    cfg.n2 = static_cast<int>(b.n2);
    cfg.n3 = static_cast<int>(b.n3);
    auto storage = arr::create_block_storage(cfg, [&](std::int32_t i) {
      return static_cast<net::MachineId>(i % cluster_.size());
    });
    return arr::Array(n.n1, n.n2, n.n3, b.n1, b.n2, b.n3, storage, spec);
  }

  static inline int counter_ = 0;
  Cluster cluster_;
  std::filesystem::path dir_;
};

// A 64^3 transform with the smallest page-aligned pipeline budget: one
// 8-row layer per stage, so both passes run at maximum slab count with
// every slab prefetched and written behind.  The pipelined forward and
// inverse transforms must reproduce the tone exactly — overlap may
// reorder the I/O, never the bytes.
TEST_F(PipelineStressTest, OutOfCoreRoundTripAtMaxSlabCount) {
  const Extents3 N{64, 64, 64};
  const Extents3 b{8, 8, 8};
  auto re = make_disk_array("re", N, b, 8);
  auto im = make_disk_array("im", N, b, 8);

  const index_t k1 = 5, k2 = 9, k3 = 12;
  const auto whole = arr::Domain::whole(N);
  std::vector<double> re0(static_cast<std::size_t>(N.volume()));
  std::vector<double> im0(re0.size());
  for (index_t i1 = 0; i1 < N.n1; ++i1)
    for (index_t i2 = 0; i2 < N.n2; ++i2)
      for (index_t i3 = 0; i3 < N.n3; ++i3) {
        const double phase =
            2.0 * std::numbers::pi *
            (double(k1 * i1) / double(N.n1) + double(k2 * i2) / double(N.n2) +
             double(k3 * i3) / double(N.n3));
        re0[N.linear(i1, i2, i3)] = std::cos(phase);
        im0[N.linear(i1, i2, i3)] = std::sin(phase);
      }
  re.write(re0, whole);
  im.write(im0, whole);

  // 3 x one 8-row layer (8 * 64 * 64 complex doubles = 512 KiB).
  const fft::OutOfCoreOptions opts{
      .max_bytes = std::size_t{3} * (std::size_t{512} << 10),
      .pipeline = true};
  const auto fwd = fft::fft3d_out_of_core(re, im, -1, opts);
  EXPECT_EQ(fwd.pass1.slabs, 8);
  EXPECT_EQ(fwd.pass2.slabs, 8);
  EXPECT_EQ(fwd.elements_moved(),
            static_cast<std::uint64_t>(4 * N.volume()));
  EXPECT_NEAR(re.get(k1, k2, k3), double(N.volume()), 1e-6);
  EXPECT_NEAR(re.get(0, 0, 0), 0.0, 1e-6);

  fft::fft3d_out_of_core(re, im, +1, opts);
  re.scale(1.0 / double(N.volume()), whole);
  im.scale(1.0 / double(N.volume()), whole);
  const auto re_back = re.read(whole);
  const auto im_back = im.read(whole);
  double err = 0.0;
  for (std::size_t i = 0; i < re_back.size(); ++i) {
    err = std::max(err, std::abs(re_back[i] - re0[i]));
    err = std::max(err, std::abs(im_back[i] - im0[i]));
  }
  EXPECT_LT(err, 1e-10);
}

// Three machines stream the same device concurrently, each with
// read-ahead on and each write-back-buffering churn into its own page
// range.  Every read anywhere must observe a uniform page (no torn
// pages, no stale bytes after a completed write), and after the final
// flushes the backing store holds every writer's last value.
TEST_F(PipelineStressTest, ConcurrentStreamsWithWriteBackAndPrefetch) {
  constexpr int kPages = 48;
  constexpr int kPerWriter = kPages / 3;
  constexpr int kRounds = 30;
  constexpr int n = 4;  // 4^3 doubles per page
  auto device = cluster_.make_remote<CoherentDevice>(
      0, (dir_ / "dev").string(), kPages, n, n, n);

  storage::ArrayPage zero(n, n, n);
  for (int p = 0; p < kPages; ++p)
    device.call<&CoherentDevice::write_array_coherent>(zero, p);

  std::vector<remote_ptr<PageCache>> caches;
  for (int w = 0; w < 3; ++w) {
    auto cache = cluster_.make_remote<PageCache>(
        static_cast<net::MachineId>(1 + w), std::uint32_t{kPages},
        dsm::PageCacheOptions{
            .readahead = 6, .write_back = true, .max_dirty = 4});
    cache.call<&PageCache::set_self>(cache);
    caches.push_back(cache);
  }

  std::atomic<int> anomalies{0};
  auto worker = [&](int w) {
    const auto m = static_cast<net::MachineId>(1 + w);
    auto guard = cluster_.use(m);
    auto cache = caches[static_cast<std::size_t>(w)];

    storage::ArrayPage page(n, n, n);
    for (int round = 1; round <= kRounds; ++round) {
      // Churn this writer's own range through the write-back buffer.
      const double v = w * 1000.0 + round;
      for (index_t i = 0; i < page.elements(); ++i) page.values()[i] = v;
      for (int p = w * kPerWriter; p < (w + 1) * kPerWriter; ++p)
        cache.call<&PageCache::write_array>(device, page, p);
      // Stream the whole device (other writers' pages included): every
      // observed page must be uniform — one write's bytes, never a mix.
      for (int p = 0; p < kPages; ++p) {
        auto got = cache.call<&PageCache::read_array>(device, p);
        const double first = got.at(0, 0, 0);
        for (index_t i = 0; i < got.elements(); ++i)
          if (got.values()[i] != first) anomalies.fetch_add(1);
      }
    }
    cache.call<&PageCache::flush>();
  };

  std::thread t0(worker, 0), t1(worker, 1), t2(worker, 2);
  t0.join();
  t1.join();
  t2.join();

  EXPECT_EQ(anomalies.load(), 0);
  for (int p = 0; p < kPages; ++p) {
    const double expect = (p / kPerWriter) * 1000.0 + kRounds;
    auto got = device.call<&CoherentDevice::read_array>(p);
    EXPECT_DOUBLE_EQ(got.at(0, 0, 0), expect) << "page " << p;
  }
  for (auto& c : caches) c.destroy();
  device.destroy();
}

// Layout churn under load: three writers and a reader hammer their own
// subdomains while the main thread walks the array through every built-in
// layout, attaching a device mid-sequence and detaching another later.
// No call may fail, no read may ever observe bytes other than the last
// completed write to its subdomain, and every relayout must account for
// all 64 pages.  (TSan runs this in the nightly slow lane: the claim
// protocol, the dual-map resolution, and the slot banks under real races.)
TEST_F(PipelineStressTest, RedistributionChurnAcrossAllLayouts) {
  const Extents3 N{16, 16, 16};
  const Extents3 b{4, 4, 4};  // 64 pages
  const Extents3 grid{4, 4, 4};
  const arr::PageMapSpec spec{arr::PageMapKind::kRoundRobin};
  arr::BlockStorageConfig cfg;
  cfg.file_prefix = (dir_ / "churn").string();
  cfg.devices = 2;
  cfg.pages_per_device =
      static_cast<std::int32_t>(spec.pages_per_device(grid, 2));
  cfg.n1 = cfg.n2 = cfg.n3 = 4;
  cfg.device_options.service_us = 50;  // slow enough that ops overlap
  auto storage = arr::create_block_storage(cfg, [&](std::int32_t i) {
    return static_cast<net::MachineId>(i % cluster_.size());
  });
  arr::Array a(N.n1, N.n2, N.n3, b.n1, b.n2, b.n3, storage, spec);

  const auto whole = arr::Domain::whole(N);
  a.write(std::vector<double>(static_cast<std::size_t>(whole.volume()), 1.0),
          whole);

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  std::array<std::atomic<int>, 3> last{};
  for (int w = 0; w < 3; ++w) {
    workers.emplace_back([&, w] {
      auto guard = cluster_.use(static_cast<net::MachineId>(1 + w));
      try {
        const arr::Domain slab(w * 4, (w + 1) * 4, 0, 16, 0, 16);
        for (int v = 2; !stop.load(); ++v) {
          std::vector<double> buf(static_cast<std::size_t>(slab.volume()),
                                  w * 1000.0 + v);
          a.write(buf, slab);
          last[static_cast<std::size_t>(w)].store(v);
          if (a.read(slab) != buf) {
            std::fprintf(stderr, "churn writer %d: readback mismatch at "
                         "round %d\n", w, v);
            failures.fetch_add(1);
          }
        }
      } catch (const std::exception& ex) {
        std::fprintf(stderr, "churn writer %d: %s\n", w, ex.what());
        failures.fetch_add(1);
      }
    });
  }
  workers.emplace_back([&] {
    auto guard = cluster_.use(0);
    try {
      const arr::Domain slab(12, 16, 0, 16, 0, 16);
      while (!stop.load())
        for (const double x : a.read(slab))
          if (x != 1.0) {
            std::fprintf(stderr, "churn reader: saw %f in untouched "
                         "slab\n", x);
            failures.fetch_add(1);
            break;
          }
    } catch (const std::exception& ex) {
      std::fprintf(stderr, "churn reader: %s\n", ex.what());
      failures.fetch_add(1);
    }
  });

  a.attach_device(arr::create_block_device(cfg, 2, 2));
  EXPECT_EQ(a.device_count(), 3);
  const std::array<arr::PageMapSpec, 6> seq{
      arr::PageMapSpec{arr::PageMapKind::kBlocked},
      arr::PageMapSpec{arr::PageMapKind::kBlockCyclic, 3},
      arr::PageMapSpec{arr::PageMapKind::kRoundRobin},
      arr::PageMapSpec{arr::PageMapKind::kBlockCyclic, 5},
      arr::PageMapSpec{arr::PageMapKind::kSingleDevice},
      arr::PageMapSpec{arr::PageMapKind::kBlocked}};
  std::uint64_t version = 0;
  for (const auto& target : seq) {
    const auto st = a.redistribute(target, {.batch_pages = 7});
    EXPECT_EQ(st.pages_migrated + st.writer_migrated, 64u) << target.name();
    EXPECT_EQ(st.map_version, ++version);
  }
  const auto st = a.detach_device(1, {.batch_pages = 9});
  EXPECT_EQ(st.pages_migrated + st.writer_migrated, 64u);
  EXPECT_EQ(st.map_version, ++version);
  EXPECT_EQ(a.device_count(), 2);

  stop = true;
  for (auto& t : workers) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_FALSE(a.migrating());
  EXPECT_EQ(a.map_version(), version);
  const Extents3 e = N;
  const auto back = a.read(whole);
  for (index_t i1 = 0; i1 < 16; ++i1)
    for (index_t i2 = 0; i2 < 16; ++i2)
      for (index_t i3 = 0; i3 < 16; ++i3) {
        const int w = static_cast<int>(i1 / 4);
        const double expect =
            w < 3 ? w * 1000.0 +
                        last[static_cast<std::size_t>(w)].load()
                  : 1.0;
        ASSERT_DOUBLE_EQ(back[e.linear(i1, i2, i3)], expect)
            << i1 << "," << i2 << "," << i3;
      }
}

}  // namespace
