// The unified durability API: typed oopp::Uri validation at the boundary,
// ReplicaOptions quorum checks, k-replica page writes with version-stamped
// quorum reads and lease-based failover (storage::ReplicatedPageDevice),
// and the chain-replicated symbolic-address registry that lets `oopp://`
// records survive shard death and cluster incarnations.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "array/block_storage.hpp"
#include "core/oopp.hpp"
#include "kv/kv_store.hpp"
#include "storage/replicated_page_device.hpp"
#include "telemetry/metrics.hpp"

using oopp::Cluster;
using oopp::remote_ptr;
using oopp::Uri;
namespace storage = oopp::storage;
namespace arr = oopp::array;

namespace {

class Acc {
 public:
  Acc() = default;
  explicit Acc(double start) : total_(start) {}
  explicit Acc(oopp::serial::IArchive& ia) { ia(total_); }
  void oopp_save(oopp::serial::OArchive& oa) const { oa(total_); }

  double add(double x) { return total_ += x; }
  double total() const { return total_; }

 private:
  double total_ = 0.0;
};

}  // namespace

template <>
struct oopp::rpc::class_def<Acc> {
  static std::string name() { return "replica.Acc"; }
  using ctors = ctor_list<ctor<>, ctor<double>>;
  template <class B>
  static void bind(B& b) {
    b.template method<&Acc::add>("add");
    b.template method<&Acc::total>("total");
    b.persistent();
  }
};

namespace {

std::uint64_t replica_counter(std::string_view name) {
  return oopp::telemetry::Metrics::scope_for("storage.replica")
      .counter(name)
      .value();
}

std::filesystem::path fresh_dir(const std::string& tag) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("oopp-replica-" + tag + "-" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

storage::Page patterned_page(std::size_t bytes, int salt) {
  storage::Page p(bytes);
  for (std::size_t j = 0; j < p.size(); ++j)
    p[j] = static_cast<unsigned char>((salt * 31 + j) % 251);
  return p;
}

/// k plain devices + one coordinator fronting them, page shape 4x4x4.
struct ReplicaSet {
  std::vector<remote_ptr<storage::ArrayPageDevice>> replicas;
  remote_ptr<storage::ReplicatedPageDevice> coord;

  ReplicaSet(Cluster& cluster, const std::filesystem::path& dir, int k,
             storage::ReplicaOptions opts = {}, int pages = 8) {
    for (int j = 0; j < k; ++j) {
      replicas.push_back(cluster.make_remote<storage::ArrayPageDevice>(
          static_cast<oopp::net::MachineId>(j % cluster.size()),
          (dir / ("dev.r" + std::to_string(j))).string(), pages, 4, 4, 4,
          storage::DeviceOptions{}));
    }
    opts.replicas = k;
    coord = cluster.make_remote<storage::ReplicatedPageDevice>(0, replicas,
                                                               opts);
  }
};

// -- oopp::Uri: validation at the API boundary ------------------------------

TEST(UriValidation, AcceptsWellFormedAddresses) {
  for (const char* s :
       {"oopp://data/set/PageDevice/34", "oopp://x",
        "oopp://a-b_c.d/e0/F9", "oopp://registry/acc-1"}) {
    Uri u(s);
    EXPECT_EQ(u.str(), s);
    EXPECT_FALSE(u.empty());
  }
  EXPECT_EQ(Uri("oopp://a/b").path(), "a/b");
  EXPECT_EQ(Uri::parse("oopp://a/b"), Uri("oopp://a/b"));
}

TEST(UriValidation, RejectsMalformedAddresses) {
  for (const char* s :
       {"", "oopp://", "oopp:/", "http://x", "data/set", "oopp:///x",
        "oopp://a//b", "oopp://a/", "oopp://sp ace", "oopp://tab\tchar"}) {
    EXPECT_THROW(Uri u(s), oopp::InvalidUri) << "accepted '" << s << "'";
  }
  try {
    Uri u("oopp://a//b");
    FAIL();
  } catch (const oopp::Error& e) {
    EXPECT_EQ(e.code(), oopp::net::CallStatus::kBadFrame);
  }
}

TEST(UriValidation, ClusterFacadeRejectsBeforeTouchingRegistry) {
  Cluster cluster(2);
  auto a = cluster.make_remote<Acc>(1, 1.0);
  EXPECT_THROW(cluster.persist(a, "not-a-uri"), oopp::InvalidUri);
  EXPECT_THROW((void)cluster.lookup<Acc>("oopp://"), oopp::InvalidUri);
  EXPECT_THROW((void)cluster.forget("oopp://bad segment"), oopp::InvalidUri);
  EXPECT_TRUE(cluster.persisted_uris().empty())
      << "a rejected address minted a registry record";
}

// -- ReplicaOptions ---------------------------------------------------------

TEST(ReplicaOptions, ValidatesQuorums) {
  storage::ReplicaOptions ok;
  EXPECT_NO_THROW(ok.validate());
  EXPECT_EQ(ok.effective_write_quorum(), 1);  // majority of 1

  storage::ReplicaOptions three{.replicas = 3};
  EXPECT_EQ(three.effective_write_quorum(), 2);  // majority of 3
  three.write_quorum = 3;
  EXPECT_EQ(three.effective_write_quorum(), 3);  // explicit override

  storage::ReplicaOptions bad{.replicas = 0};
  EXPECT_THROW(bad.validate(), oopp::Error);
  bad = {.replicas = 3, .write_quorum = 4};
  EXPECT_THROW(bad.validate(), oopp::Error);
  bad = {.replicas = 3, .read_quorum = 0};
  EXPECT_THROW(bad.validate(), oopp::Error);
  bad = {.replicas = 2, .read_quorum = 3};
  EXPECT_THROW(bad.validate(), oopp::Error);
  bad = {.replicas = 2, .lease_ms = 0};
  EXPECT_THROW(bad.validate(), oopp::Error);
}

// -- ReplicatedPageDevice ---------------------------------------------------

TEST(ReplicatedDevice, WritesReachEveryReplicaAndReadBack) {
  const auto dir = fresh_dir("roundtrip");
  Cluster cluster(3);
  ReplicaSet set(cluster, dir, 3);
  const auto writes0 = replica_counter("replica_writes");

  const std::size_t bytes = 4 * 4 * 4 * sizeof(double);
  std::vector<storage::Page> pages;
  std::vector<std::int32_t> indices;
  for (int i = 0; i < 8; ++i) {
    pages.push_back(patterned_page(bytes, i));
    indices.push_back(i);
  }
  set.coord.call<&storage::PageDevice::write_pages>(pages, indices);

  // Coordinator reads match what was written.
  auto got = set.coord.call<&storage::PageDevice::read_pages>(indices);
  ASSERT_EQ(got.size(), pages.size());
  for (int i = 0; i < 8; ++i) EXPECT_EQ(got[i], pages[i]) << "page " << i;

  // Every replica holds every page with the committed stamp.
  for (std::size_t j = 0; j < set.replicas.size(); ++j) {
    auto stamped =
        set.replicas[j].call<&storage::PageDevice::read_pages_stamped>(
            indices);
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(stamped.pages[i], pages[i])
          << "replica " << j << " page " << i;
      EXPECT_EQ(stamped.stamps[i], 1u) << "replica " << j << " page " << i;
    }
  }
  EXPECT_GE(replica_counter("replica_writes") - writes0, 24u);

  auto status =
      set.coord.call<&storage::ReplicatedPageDevice::replica_status>();
  EXPECT_EQ(status.alive, (std::vector<std::uint8_t>{1, 1, 1}));
  arr::BlockStorage as_storage{remote_ptr<storage::ArrayPageDevice>(
      set.coord.machine(), set.coord.id())};
  arr::destroy_replicated_block_storage(as_storage);
  std::filesystem::remove_all(dir);
}

TEST(ReplicatedDevice, FailoverOnDeadPrimaryKeepsDataAvailable) {
  const auto dir = fresh_dir("failover");
  Cluster cluster(3);
  ReplicaSet set(cluster, dir, 3);
  const auto failovers0 = replica_counter("failovers");
  const auto quorum0 = replica_counter("quorum_reads");

  const std::size_t bytes = 4 * 4 * 4 * sizeof(double);
  std::vector<storage::Page> pages;
  std::vector<std::int32_t> indices;
  for (int i = 0; i < 8; ++i) {
    pages.push_back(patterned_page(bytes, 100 + i));
    indices.push_back(i);
  }
  set.coord.call<&storage::PageDevice::write_pages>(pages, indices);
  // Leases are elected on the read path; take one read so the first
  // range has a leased primary to kill.
  (void)set.coord.call<&storage::PageDevice::read_pages>(indices);

  // Kill the replica currently holding the lease for page 0's range.
  auto status =
      set.coord.call<&storage::ReplicatedPageDevice::replica_status>();
  ASSERT_FALSE(status.range_primary.empty());
  const auto primary = status.range_primary[0];
  ASSERT_GE(primary, 0);
  set.replicas[static_cast<std::size_t>(primary)].destroy();

  // Reads still return the acknowledged data (failover to a survivor).
  auto got = set.coord.call<&storage::PageDevice::read_pages>(indices);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(got[i], pages[i]) << "page " << i;
  EXPECT_GE(replica_counter("failovers") - failovers0, 1u);
  EXPECT_GE(replica_counter("quorum_reads") - quorum0, 1u);
  EXPECT_EQ(set.coord.call<&storage::ReplicatedPageDevice::alive_replicas>(),
            2);

  // Writes keep committing on the surviving majority (2 of 3), and the
  // dead replica never resurrects into the lease table.
  set.coord.call<&storage::PageDevice::write_pages>(pages, indices);
  status = set.coord.call<&storage::ReplicatedPageDevice::replica_status>();
  EXPECT_EQ(status.alive[static_cast<std::size_t>(primary)], 0u);
  for (const auto p : status.range_primary) EXPECT_NE(p, primary);
  std::filesystem::remove_all(dir);
}

TEST(ReplicatedDevice, LostWriteQuorumIsATypedError) {
  const auto dir = fresh_dir("quorumloss");
  Cluster cluster(2);
  ReplicaSet set(cluster, dir, 2);  // majority of 2 = both

  const std::size_t bytes = 4 * 4 * 4 * sizeof(double);
  set.coord.call<&storage::PageDevice::write>(patterned_page(bytes, 7), 0);

  set.replicas[1].destroy();
  // The coordinator throws Error(kUnavailable); through the RPC boundary
  // it surfaces as RemoteError carrying the original message.
  try {
    set.coord.call<&storage::PageDevice::write>(patterned_page(bytes, 8), 1);
    FAIL() << "write acknowledged without a quorum";
  } catch (const oopp::rpc::RemoteError& e) {
    EXPECT_NE(e.original_what().find("lost its quorum"), std::string::npos)
        << e.original_what();
  }

  // Reads of previously acknowledged data still work off the survivor.
  EXPECT_EQ(set.coord.call<&storage::PageDevice::read>(0),
            patterned_page(bytes, 7));
  std::filesystem::remove_all(dir);
}

TEST(ReplicatedDevice, BlockStorageFactoryBuildsWorkingSet) {
  const auto dir = fresh_dir("factory");
  Cluster cluster(4);
  arr::BlockStorageConfig cfg;
  cfg.file_prefix = (dir / "a").string();
  cfg.devices = 2;
  cfg.pages_per_device = 4;
  cfg.n1 = 4;
  cfg.n2 = 1;
  cfg.n3 = 2;
  auto bs = arr::create_replicated_block_storage(
      cfg, storage::ReplicaOptions{.replicas = 3},
      [](std::int32_t i) { return static_cast<oopp::net::MachineId>(i); },
      [&](std::int32_t i, std::int32_t j) {
        return static_cast<oopp::net::MachineId>((i + j) % 4);
      });
  ASSERT_EQ(bs.size(), 2u);

  // Each slot answers the whole device protocol, replicated underneath.
  const std::size_t bytes = 4 * 1 * 2 * sizeof(double);
  for (auto& dev : bs) {
    dev.call<&storage::PageDevice::write>(patterned_page(bytes, 3), 2);
    EXPECT_EQ(dev.call<&storage::PageDevice::read>(2),
              patterned_page(bytes, 3));
    remote_ptr<storage::ReplicatedPageDevice> coord(dev.machine(), dev.id());
    EXPECT_EQ(coord.call<&storage::ReplicatedPageDevice::replica_count>(), 3);
  }
  arr::destroy_replicated_block_storage(bs);
  EXPECT_TRUE(bs.empty());
  std::filesystem::remove_all(dir);
}

// -- replicated symbolic-address registry -----------------------------------

TEST(ReplicatedRegistry, RecordsSurviveShardPrimaryDeath) {
  Cluster::Options opts;
  opts.machines = 3;
  opts.replica.replicas = 2;
  Cluster cluster(opts);
  const auto failovers0 = replica_counter("registry_failovers");

  auto a = cluster.make_remote<Acc>(1, 1.0);
  a.call<&Acc::add>(2.0);
  cluster.persist(a, "oopp://replica/acc");

  auto* store = cluster.registry_store();
  ASSERT_NE(store, nullptr) << "durability opts did not replicate the registry";
  const int shard = store->shard_of("oopp://replica/acc");
  store->primary(shard).destroy();

  // The record is served from the promoted backup; the live process is
  // untouched.
  auto again = cluster.lookup<Acc>("oopp://replica/acc");
  EXPECT_EQ(again, a);
  EXPECT_DOUBLE_EQ(again.call<&Acc::total>(), 3.0);
  EXPECT_GE(replica_counter("registry_failovers") - failovers0, 1u);
}

TEST(ReplicatedRegistry, LegacyBackendWhenReplicationOff) {
  Cluster cluster(2);
  EXPECT_EQ(cluster.registry_store(), nullptr);
  auto a = cluster.make_remote<Acc>(1, 4.0);
  cluster.persist(a, "oopp://legacy/acc");
  EXPECT_EQ(cluster.lookup<Acc>("oopp://legacy/acc"), a);
}

// Records restored from a previous incarnation must not claim live object
// ids that died with it: they come back passive and lookup re-activates
// from the checkpoint image.
TEST(ReplicatedRegistry, PreviousIncarnationRecordsComeBackPassive) {
  const auto dir = fresh_dir("incarnation");
  Cluster::Options opts;
  opts.machines = 2;
  opts.replica.replicas = 2;
  opts.state_dir = dir;
  opts.persistent_registry = true;

  {
    Cluster first(opts);
    auto a = first.make_remote<Acc>(1, 5.0);
    a.call<&Acc::add>(2.0);
    first.persist(a, "oopp://replica/persistent-acc");  // record stays live
    ASSERT_NE(first.registry_store(), nullptr);
  }  // shutdown checkpoints the registry with the record marked live

  Cluster second(opts);
  ASSERT_EQ(second.persisted_uris(),
            std::vector<std::string>{"oopp://replica/persistent-acc"});
  // A stale live id would make this call land on a nonexistent object;
  // the passive record re-activates from the image instead.
  auto b = second.lookup<Acc>("oopp://replica/persistent-acc");
  EXPECT_DOUBLE_EQ(b.call<&Acc::total>(), 7.0);
  std::filesystem::remove_all(dir);
}

// The same incarnation-safety contract holds for the legacy NameService
// backend (mark_all_passive at restore time).
TEST(ReplicatedRegistry, LegacyIncarnationRecordsComeBackPassive) {
  const auto dir = fresh_dir("incarnation-legacy");
  Cluster::Options opts;
  opts.machines = 2;
  opts.state_dir = dir;
  opts.persistent_registry = true;

  {
    Cluster first(opts);
    auto a = first.make_remote<Acc>(1, 9.0);
    first.persist(a, "oopp://legacy/persistent-acc");
  }

  Cluster second(opts);
  auto b = second.lookup<Acc>("oopp://legacy/persistent-acc");
  EXPECT_DOUBLE_EQ(b.call<&Acc::total>(), 9.0);
  std::filesystem::remove_all(dir);
}

// A replicated coordinator is itself a persistent process: passivate it,
// re-activate through the facade, and the replica set keeps serving.
TEST(ReplicatedDevice, CoordinatorSurvivesPassivation) {
  const auto dir = fresh_dir("passivate");
  Cluster::Options opts;
  opts.machines = 3;
  opts.state_dir = dir / "state";
  Cluster cluster(opts);
  ReplicaSet set(cluster, dir, 3);

  const std::size_t bytes = 4 * 4 * 4 * sizeof(double);
  set.coord.call<&storage::PageDevice::write>(patterned_page(bytes, 11), 3);
  cluster.passivate(set.coord, "oopp://replica/coordinator");

  auto coord =
      cluster.activate<storage::ReplicatedPageDevice>(
          "oopp://replica/coordinator", 1);
  EXPECT_EQ(coord.machine(), 1);
  EXPECT_EQ(coord.call<&storage::PageDevice::read>(3),
            patterned_page(bytes, 11));
  EXPECT_EQ(coord.call<&storage::ReplicatedPageDevice::replica_count>(), 3);
  std::filesystem::remove_all(dir);
}

}  // namespace
