// N:M dispatch tests (docs/DISPATCH.md): the receiver thread routes
// requests to per-shard FIFOs drained on the worker pool.  These pin the
// redesign's contract — per-object FIFO order survives N concurrent
// clients, M distinct objects demonstrably execute in parallel, a racing
// shutdown cannot deliver into a destroyed Inbox, a bounded object queue
// refuses overflow with PeerUnavailable, and the reactor's incremental
// frame decoder parses exactly the bytes the blocking FrameReader does.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/future.hpp"
#include "core/remote_ptr.hpp"
#include "net/fabric_options.hpp"
#include "net/inproc_fabric.hpp"
#include "net/tcp_fabric.hpp"
#include "net/tcp_wire.hpp"
#include "rpc/binding.hpp"
#include "rpc/errors.hpp"
#include "rpc/node.hpp"

namespace rpc = oopp::rpc;
namespace net = oopp::net;
namespace wire = oopp::net::wire;
using oopp::Future;
using oopp::make_remote;
using oopp::remote_ptr;

namespace {

// ---------------------------------------------------------------------------
// Test servants
// ---------------------------------------------------------------------------

/// Appends every call's tag to a log.  Per-object FIFO dispatch is what
/// makes the unguarded vector race-free: if two invocations of one
/// Recorder ever overlapped, TSan (and the test's ordering check) would
/// catch it.
class Recorder {
 public:
  int record(int tag) {
    log_.push_back(tag);
    return tag;
  }
  std::vector<int> log() const { return log_; }

 private:
  std::vector<int> log_;
};

/// A rendezvous: arrive() blocks until `expected` concurrent invocations
/// (across distinct objects) are all inside it, proving the invocations
/// overlap in time.  Serial execution would park the first arrival until
/// the timeout and return 0.
class Gate {
 public:
  explicit Gate(int expected) : expected_(expected) {}

  int arrive() {
    std::unique_lock<std::mutex> lk(mu());
    ++arrived();
    cv().notify_all();
    const bool all = cv().wait_for(lk, std::chrono::seconds(20), [&] {
      return arrived() >= expected_;
    });
    return all ? 1 : 0;
  }

  static void reset() {
    std::lock_guard<std::mutex> lk(mu());
    arrived() = 0;
  }

 private:
  // Shared across all Gate instances in this process (the M objects of
  // one test); plain std:: primitives are fine in test code.
  static std::mutex& mu() {
    static std::mutex m;
    return m;
  }
  static std::condition_variable& cv() {
    static std::condition_variable c;
    return c;
  }
  static int& arrived() {
    static int a = 0;
    return a;
  }
  int expected_;
};

/// Holds each invocation for `ms`, so a storm of calls stacks up in the
/// object's command queue.
class Sleeper {
 public:
  int nap(int ms) {
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    return ms;
  }
};

}  // namespace

template <>
struct oopp::rpc::class_def<Recorder> {
  static std::string name() { return "test.dispatch.Recorder"; }
  using ctors = ctor_list<ctor<>>;
  template <class B>
  static void bind(B& b) {
    b.template method<&Recorder::record>("record");
    b.template method<&Recorder::log>("log");
  }
};

template <>
struct oopp::rpc::class_def<Gate> {
  static std::string name() { return "test.dispatch.Gate"; }
  using ctors = ctor_list<ctor<int>>;
  template <class B>
  static void bind(B& b) {
    b.template method<&Gate::arrive>("arrive");
  }
};

template <>
struct oopp::rpc::class_def<Sleeper> {
  static std::string name() { return "test.dispatch.Sleeper"; }
  using ctors = ctor_list<ctor<>>;
  template <class B>
  static void bind(B& b) {
    b.template method<&Sleeper::nap>("nap");
  }
};

namespace {

// ---------------------------------------------------------------------------
// Per-client FIFO through the full reactor + shard + object-queue chain
// ---------------------------------------------------------------------------

// N client threads share one Recorder over real TCP (reactor inbound
// path).  Each thread issues its calls in order, so the chain inbox FIFO
// -> shard FIFO -> object FIFO must preserve each client's subsequence
// even though clients interleave arbitrarily.
TEST(Dispatch, NClientsOneObjectObserveStrictFifo) {
  constexpr int kClients = 4;
  constexpr int kCalls = 48;
  constexpr int kStride = 1000;  // tag = client * kStride + seq

  net::TcpFabric fabric(2);
  rpc::Node n0(0, fabric);
  rpc::Node n1(1, fabric);
  n0.start();
  n1.start();

  remote_ptr<Recorder> rec;
  {
    rpc::Node::ContextGuard guard(&n0);
    rec = make_remote<Recorder>(1);
  }

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      rpc::Node::ContextGuard guard(&n0);
      std::vector<Future<int>> futs;
      futs.reserve(kCalls);
      for (int s = 0; s < kCalls; ++s)
        futs.push_back(rec.async<&Recorder::record>(c * kStride + s));
      for (auto& f : futs)
        (void)f.get_for(std::chrono::seconds(30));
    });
  }
  for (auto& t : clients) t.join();

  std::vector<int> log;
  {
    rpc::Node::ContextGuard guard(&n0);
    log = rec.call<&Recorder::log>();
    rec.destroy();
  }

  ASSERT_EQ(log.size(), static_cast<std::size_t>(kClients * kCalls));
  std::vector<int> next_seq(kClients, 0);
  for (int tag : log) {
    const int c = tag / kStride;
    const int s = tag % kStride;
    ASSERT_GE(c, 0);
    ASSERT_LT(c, kClients);
    // Each client's subsequence arrives in exactly the order it was sent.
    EXPECT_EQ(s, next_seq[c]) << "client " << c << " reordered";
    next_seq[c] = s + 1;
  }

  for (auto* n : {&n0, &n1}) n->stop_receiving();
  for (auto* n : {&n0, &n1}) n->fail_pending();
  for (auto* n : {&n0, &n1}) n->stop_pool();
  fabric.shutdown();
}

// ---------------------------------------------------------------------------
// M distinct objects on one node execute in parallel
// ---------------------------------------------------------------------------

TEST(Dispatch, MObjectsOnOneNodeExecuteInParallel) {
  constexpr int kObjects = 8;
  Gate::reset();

  net::InProcFabric fabric(2);
  rpc::Node n0(0, fabric);
  rpc::Node n1(1, fabric);
  n0.start();
  n1.start();
  rpc::Node::ContextGuard guard(&n0);

  std::vector<remote_ptr<Gate>> gates;
  gates.reserve(kObjects);
  for (int i = 0; i < kObjects; ++i)
    gates.push_back(make_remote<Gate>(1, kObjects));

  // One blocking arrive() per object; they only ever return 1 if all
  // kObjects invocations are inside the rendezvous simultaneously.
  std::vector<Future<int>> futs;
  futs.reserve(kObjects);
  for (auto& g : gates) futs.push_back(g.async<&Gate::arrive>());
  for (auto& f : futs)
    EXPECT_EQ(f.get_for(std::chrono::seconds(30)), 1);

  for (auto& g : gates) g.destroy();

  for (auto* n : {&n0, &n1}) n->stop_receiving();
  for (auto* n : {&n0, &n1}) n->fail_pending();
  for (auto* n : {&n0, &n1}) n->stop_pool();
}

// ---------------------------------------------------------------------------
// Racing shutdown: frames arriving during/after close() must be dropped,
// never delivered into a destroyed Inbox
// ---------------------------------------------------------------------------

void racing_shutdown(const net::FabricOptions& transport) {
  net::TcpFabric fabric(2, transport);
  auto n0 = std::make_unique<rpc::Node>(0, fabric);
  auto n1 = std::make_unique<rpc::Node>(1, fabric);
  n0->start();
  n1->start();

  remote_ptr<Recorder> rec;
  {
    rpc::Node::ContextGuard guard(n0.get());
    rec = make_remote<Recorder>(1);
  }

  // Storm the victim with calls while it shuts down and is destroyed.
  // Once node 1 is gone every outcome is legal — timeout, unavailable,
  // aborted — except a crash or a write into freed memory.
  std::atomic<bool> stop{false};
  std::thread storm([&] {
    rpc::Node::ContextGuard guard(n0.get());
    int tag = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      try {
        auto f = rec.async<&Recorder::record>(tag++);
        (void)f.get_for(std::chrono::milliseconds(20));
      } catch (...) {
        // expected once the peer is down
      }
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  n1->stop_receiving();  // detaches from the fabric first
  n1->fail_pending();
  n1->stop_pool();
  n1.reset();  // Inbox destroyed while the storm keeps sending
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  stop.store(true);
  storm.join();

  n0->stop_receiving();
  n0->fail_pending();
  n0->stop_pool();
  n0.reset();
  fabric.shutdown();
}

TEST(Dispatch, RacingShutdownReactor) {
  racing_shutdown(net::FabricOptions{.reactor = true});
}

TEST(Dispatch, RacingShutdownThreadPerPeer) {
  racing_shutdown(net::FabricOptions{.reactor = false});
}

// ---------------------------------------------------------------------------
// Bounded object queues refuse overflow with PeerUnavailable
// ---------------------------------------------------------------------------

TEST(Dispatch, QueueBoundRejectsOverflowWithPeerUnavailable) {
  net::InProcFabric fabric(2);
  rpc::Node n0(0, fabric);
  rpc::Node::Options opts;
  opts.dispatch.queue_bound = 2;
  opts.dispatch.shards = 5;  // rounds up to 8
  rpc::Node n1(1, fabric, opts);
  n0.start();
  n1.start();
  rpc::Node::ContextGuard guard(&n0);

  auto sleeper = make_remote<Sleeper>(1);

  constexpr int kCalls = 24;
  std::vector<Future<int>> futs;
  futs.reserve(kCalls);
  for (int i = 0; i < kCalls; ++i)
    futs.push_back(sleeper.async<&Sleeper::nap>(30));

  int ok = 0, unavailable = 0;
  for (auto& f : futs) {
    try {
      (void)f.get_for(std::chrono::seconds(30));
      ++ok;
    } catch (const rpc::PeerUnavailable&) {
      ++unavailable;
    }
  }
  // The queue admits some calls (the in-flight one plus queue_bound) and
  // must refuse the rest instead of growing without limit.
  EXPECT_GE(ok, 1);
  EXPECT_GE(unavailable, 1);
  EXPECT_EQ(ok + unavailable, kCalls);

  const auto stats = n1.stats();
  EXPECT_EQ(stats.dispatch_shards, 8u);   // 5 rounded up to a power of two
  EXPECT_GE(stats.queue_depth_hwm, 1u);   // the storm stacked the queue
  EXPECT_GE(stats.pool_threads, opts.dispatch.workers);

  sleeper.destroy();
  for (auto* n : {&n0, &n1}) n->stop_receiving();
  for (auto* n : {&n0, &n1}) n->fail_pending();
  for (auto* n : {&n0, &n1}) n->stop_pool();
}

// ---------------------------------------------------------------------------
// StreamFrameDecoder parses exactly what the blocking writer emits
// ---------------------------------------------------------------------------

net::Buffer bytes_of(std::initializer_list<std::uint8_t> v) {
  std::vector<std::byte> b;
  b.reserve(v.size());
  for (auto x : v) b.push_back(std::byte{x});
  return net::Buffer(std::move(b));
}

void expect_same_message(const net::Message& got, const net::Message& want) {
  EXPECT_EQ(got.header.kind, want.header.kind);
  EXPECT_EQ(got.header.status, want.header.status);
  EXPECT_EQ(got.header.src, want.header.src);
  EXPECT_EQ(got.header.dst, want.header.dst);
  EXPECT_EQ(got.header.seq, want.header.seq);
  EXPECT_EQ(got.header.object, want.header.object);
  EXPECT_EQ(got.header.method, want.header.method);
  EXPECT_EQ(got.header.trace_id, want.header.trace_id);
  EXPECT_EQ(got.header.span_id, want.header.span_id);
  EXPECT_EQ(got.header.attempt, want.header.attempt);
  EXPECT_EQ(got.header.held.count, want.header.held.count);
  for (std::uint8_t i = 0; i < want.header.held.count; ++i)
    EXPECT_EQ(got.header.held.ids[i], want.header.held.ids[i]);
  const auto gb = got.payload.bytes();
  const auto wb = want.payload.bytes();
  ASSERT_EQ(gb.size(), wb.size());
  for (std::size_t i = 0; i < wb.size(); ++i) EXPECT_EQ(gb[i], wb[i]);
}

// Feed the exact bytes send_frame/send_batch put on the wire into the
// reactor's incremental decoder one byte at a time — the worst possible
// read() fragmentation — and require the same message sequence the
// blocking FrameReader would produce: plain frames, an empty payload, a
// held-locks header extension, and a 0xB5 batch.
TEST(Dispatch, StreamFrameDecoderByteAtATimeMatchesWire) {
  int sv[2];
  ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, sv));

  std::vector<net::Message> sent;
  sent.push_back(net::make_request(0, 1, 7, 42, 3,
                                   bytes_of({1, 2, 3, 4, 5}), true));
  sent.push_back(net::make_request(1, 0, 8, 43, 4, net::Buffer{}, false));
  net::LockSet held;
  held.count = 2;
  held.ids[0] = 0x11111111;
  held.ids[1] = 0x22222222;
  sent.push_back(net::make_request(0, 1, 9, 44, 5, bytes_of({9, 8, 7}),
                                   false, /*trace_id=*/0xABCD,
                                   /*span_id=*/0xEF01, /*attempt=*/2, held));
  std::vector<net::Message> batch;
  for (int i = 0; i < 3; ++i)
    batch.push_back(net::make_request(
        0, 1, static_cast<net::SeqNum>(100 + i), 50,
        static_cast<net::MethodId>(i),
        bytes_of({static_cast<std::uint8_t>(i), 0xFF}), false));

  for (const auto& m : sent) ASSERT_TRUE(wire::send_frame(sv[0], m));
  ASSERT_TRUE(wire::send_batch(sv[0], batch.data(), batch.size()));
  ::shutdown(sv[0], SHUT_WR);

  std::vector<std::uint8_t> stream;
  std::uint8_t chunk[512];
  for (;;) {
    const ssize_t n = ::read(sv[1], chunk, sizeof(chunk));
    ASSERT_GE(n, 0);
    if (n == 0) break;
    stream.insert(stream.end(), chunk, chunk + n);
  }
  ::close(sv[0]);
  ::close(sv[1]);

  wire::StreamFrameDecoder decoder;
  std::vector<net::Message> got;
  for (std::uint8_t b : stream) ASSERT_TRUE(decoder.feed(&b, 1, got));

  std::vector<net::Message> want = sent;
  for (auto& m : batch) want.push_back(std::move(m));
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    SCOPED_TRACE(i);
    expect_same_message(got[i], want[i]);
  }
}

}  // namespace
