// Fault-injection tests: under a lossy / corrupting interconnect the
// framework's failure behaviour must be *typed* — corruption surfaces as
// rpc::BadFrame (thanks to payload checksums), loss as rpc::CallTimeout
// on a deadline.  Never a silent wrong answer, never undefined behaviour.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "core/oopp.hpp"
#include "net/faulty_fabric.hpp"
#include "net/inproc_fabric.hpp"
#include "util/checked_mutex.hpp"

using namespace oopp;

namespace {

/// CI hook (the faults-smoke job): OOPP_LOCKGRAPH_OUT=<path> dumps this
/// process's lock-order graph (run with OOPP_DIST_LOCK_CHECK=1 so the
/// cross-node edges are recorded); tools/oopp_graph.py merges the dumps
/// and gates on cycles.
class LockgraphDumpEnv : public ::testing::Environment {
 public:
  void TearDown() override {
    const char* out = std::getenv("OOPP_LOCKGRAPH_OUT");
    if (!out) return;
    const auto parent = std::filesystem::path(out).parent_path();
    if (!parent.empty()) std::filesystem::create_directories(parent);
    std::ofstream(out) << util::lockcheck::dump_graph_json(0) << "\n";
  }
};
const auto* const kLockgraphDump =
    ::testing::AddGlobalTestEnvironment(new LockgraphDumpEnv);

class Echoer {
 public:
  Echoer() = default;
  std::vector<double> echo(const std::vector<double>& v) { return v; }
  int poke() { return 42; }
};

}  // namespace

template <>
struct oopp::rpc::class_def<Echoer> {
  static std::string name() { return "faults.Echoer"; }
  using ctors = ctor_list<ctor<>>;
  template <class B>
  static void bind(B& b) {
    b.template method<&Echoer::echo>("echo");
    b.template method<&Echoer::poke>("poke");
  }
};

namespace {

struct FaultyCluster {
  net::FaultyFabric* fabric = nullptr;  // owned by the cluster
  std::unique_ptr<Cluster> cluster;

  explicit FaultyCluster(net::FaultyFabric::Faults initial = {}) {
    Cluster::Options opts;
    opts.machines = 2;
    opts.node.checksums = true;
    opts.fabric_factory = [&](std::size_t machines) {
      auto faulty = std::make_unique<net::FaultyFabric>(
          std::make_unique<net::InProcFabric>(machines), initial);
      fabric = faulty.get();
      return faulty;
    };
    cluster = std::make_unique<Cluster>(opts);
  }
};

TEST(Faults, HealthyFaultyFabricIsTransparent) {
  FaultyCluster fc;
  auto e = fc.cluster->make_remote<Echoer>(1);
  std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_EQ(e.call<&Echoer::echo>(v), v);
  EXPECT_EQ(fc.fabric->dropped(), 0u);
  EXPECT_EQ(fc.fabric->corrupted(), 0u);
}

TEST(Faults, CorruptionIsDetectedNeverSilent) {
  FaultyCluster fc;
  auto e = fc.cluster->make_remote<Echoer>(1);
  // Turn the network hostile: corrupt half of all payloads.
  fc.fabric->set_faults({.corrupt_probability = 0.5, .seed = 7});

  std::vector<double> v(64);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = double(i) * 0.25;

  int ok = 0, bad = 0;
  for (int i = 0; i < 200; ++i) {
    try {
      // Either the exact right answer comes back, or a typed error — a
      // corrupted frame may never alter data undetected.
      ASSERT_EQ(e.call<&Echoer::echo>(v), v);
      ++ok;
    } catch (const rpc::BadFrame&) {
      ++bad;
    }
  }
  EXPECT_GT(ok, 0);
  EXPECT_GT(bad, 0);
  EXPECT_GT(fc.fabric->corrupted(), 0u);
}

TEST(Faults, CorruptedResponseSurfacesAtCaller) {
  FaultyCluster fc;
  auto e = fc.cluster->make_remote<Echoer>(1);
  // Corrupt only responses: the request executes, the reply is mangled.
  fc.fabric->set_faults({.corrupt_probability = 1.0,
                         .affect_requests = false,
                         .seed = 11});
  std::vector<double> v{5.0, 6.0};
  EXPECT_THROW((void)e.call<&Echoer::echo>(v), rpc::BadFrame);
}

TEST(Faults, LossSurfacesAsTimeoutNotHang) {
  FaultyCluster fc;
  auto e = fc.cluster->make_remote<Echoer>(1);
  fc.fabric->set_faults({.drop_probability = 1.0, .seed = 13});

  auto fut = e.async<&Echoer::poke>();
  EXPECT_THROW((void)fut.get_for(std::chrono::milliseconds(50)),
               rpc::CallTimeout);
  EXPECT_GT(fc.fabric->dropped(), 0u);

  // Heal the network: the object is intact and reachable again.
  fc.fabric->set_faults({});
  EXPECT_EQ(e.call<&Echoer::poke>(), 42);
}

TEST(Faults, ChecksumsCoverControlPlane) {
  FaultyCluster fc;
  fc.fabric->set_faults({.corrupt_probability = 1.0, .seed = 17});
  // Spawn arguments travel in a control request; corruption must be
  // rejected, not misinterpreted.
  EXPECT_THROW(fc.cluster->make_remote<Echoer>(1), rpc::BadFrame);
}

TEST(Faults, SetFaultsConcurrentWithSendIsRaceFree) {
  // Regression (run under TSan): send() used to read the eligibility
  // flags before taking the fabric mutex, racing with set_faults().  The
  // whole fault decision now sits under the lock.
  net::FaultyFabric fabric(std::make_unique<net::InProcFabric>(2),
                           net::FaultyFabric::Faults{});
  net::Inbox a, b;
  fabric.attach(0, &a);
  fabric.attach(1, &b);

  std::thread sender([&] {
    for (int i = 0; i < 2000; ++i) {
      fabric.send(net::make_request(0, 1, static_cast<net::SeqNum>(i),
                                    /*object=*/1, /*method=*/1,
                                    std::vector<std::byte>(16),
                                    /*checksum=*/false));
    }
  });
  for (int i = 0; i < 400; ++i) {
    fabric.set_faults({.drop_probability = (i % 2) ? 0.5 : 0.0,
                       .corrupt_probability = (i % 3) ? 0.25 : 0.0,
                       .affect_requests = (i % 3) != 0,
                       .affect_responses = (i % 2) != 0,
                       .seed = static_cast<std::uint64_t>(i)});
  }
  sender.join();
  a.close();
  b.close();
  fabric.shutdown();
}

TEST(Faults, DroppedTrafficDoesNotPoisonLaterCalls) {
  FaultyCluster fc;
  auto e = fc.cluster->make_remote<Echoer>(1);
  fc.fabric->set_faults({.drop_probability = 0.6, .seed = 19});

  int delivered = 0;
  std::vector<Future<int>> stuck;
  for (int i = 0; i < 50; ++i) {
    auto fut = e.async<&Echoer::poke>();
    if (fut.wait_for(std::chrono::milliseconds(20))) {
      EXPECT_EQ(fut.get(), 42);
      ++delivered;
    } else {
      stuck.push_back(std::move(fut));  // lost; abandoned deliberately
    }
  }
  EXPECT_GT(delivered, 0);
  EXPECT_FALSE(stuck.empty());

  fc.fabric->set_faults({});
  EXPECT_EQ(e.call<&Echoer::poke>(), 42);
}

}  // namespace
