// Coherent page cache tests: read-through caching, hit/miss accounting,
// LRU eviction with unsubscription, write invalidation (single and many
// caches), the poisoned-fetch race, and coherence under concurrent
// readers and writers.
#include <gtest/gtest.h>

#include <filesystem>
#include <thread>

#include "array/array.hpp"
#include "array/domain.hpp"
#include "core/oopp.hpp"
#include "dsm/page_cache.hpp"

using namespace oopp;
using dsm::CoherentDevice;
using dsm::PageCache;

namespace {

class DsmTest : public ::testing::Test {
 protected:
  DsmTest() : cluster_(4) {
    dir_ = std::filesystem::temp_directory_path() /
           ("oopp-dsm-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter_++));
    std::filesystem::create_directories(dir_);
    device_ = cluster_.make_remote<CoherentDevice>(
        0, (dir_ / "dev").string(), 8, 4, 4, 4);
  }
  ~DsmTest() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  remote_ptr<PageCache> make_cache(net::MachineId m,
                                   std::uint32_t capacity = 8) {
    auto cache = cluster_.make_remote<PageCache>(m, capacity);
    cache.call<&PageCache::set_self>(cache);
    return cache;
  }

  storage::ArrayPage filled_page(double v) {
    storage::ArrayPage p(4, 4, 4);
    for (index_t i = 0; i < p.elements(); ++i) p.values()[i] = v;
    return p;
  }

  void write_page(double v, int index) {
    device_.call<&CoherentDevice::write_array_coherent>(filled_page(v),
                                                        index);
  }

  double read_via(const remote_ptr<PageCache>& cache, int index) {
    auto page = cache.call<&PageCache::read_array>(device_, index);
    return page.at(0, 0, 0);
  }

  static inline int counter_ = 0;
  Cluster cluster_;
  std::filesystem::path dir_;
  remote_ptr<CoherentDevice> device_;
};

TEST_F(DsmTest, ReadThroughCachesAndHits) {
  auto cache = make_cache(1);
  write_page(5.0, 2);
  EXPECT_DOUBLE_EQ(read_via(cache, 2), 5.0);
  EXPECT_DOUBLE_EQ(read_via(cache, 2), 5.0);
  EXPECT_DOUBLE_EQ(read_via(cache, 2), 5.0);
  EXPECT_EQ(cache.call<&PageCache::misses>(), 1u);
  EXPECT_EQ(cache.call<&PageCache::hits>(), 2u);
  EXPECT_EQ(cache.call<&PageCache::resident>(), 1u);
  EXPECT_EQ(device_.call<&CoherentDevice::subscriber_count>(2), 1u);
}

TEST_F(DsmTest, CachedReadsSkipTheDevice) {
  auto cache = make_cache(1);
  write_page(1.0, 0);
  (void)read_via(cache, 0);
  const auto ops_before = device_.call<&storage::PageDevice::operations>();
  for (int i = 0; i < 10; ++i) (void)read_via(cache, 0);
  EXPECT_EQ(device_.call<&storage::PageDevice::operations>(), ops_before);
}

TEST_F(DsmTest, WriteInvalidatesEveryCache) {
  auto c1 = make_cache(1);
  auto c2 = make_cache(2);
  auto c3 = make_cache(3);
  write_page(1.0, 4);
  for (auto& c : {c1, c2, c3}) EXPECT_DOUBLE_EQ(read_via(c, 4), 1.0);

  write_page(2.0, 4);  // must invalidate all three
  for (auto& c : {c1, c2, c3}) {
    EXPECT_DOUBLE_EQ(read_via(c, 4), 2.0);
    EXPECT_EQ(c.call<&PageCache::invalidations>(), 1u);
  }
}

TEST_F(DsmTest, InvalidationOnlyTouchesTheWrittenPage) {
  auto cache = make_cache(1);
  write_page(1.0, 0);
  write_page(3.0, 1);
  (void)read_via(cache, 0);
  (void)read_via(cache, 1);
  write_page(9.0, 0);
  EXPECT_EQ(cache.call<&PageCache::resident>(), 1u);  // page 1 survived
  EXPECT_DOUBLE_EQ(read_via(cache, 1), 3.0);
  EXPECT_EQ(cache.call<&PageCache::hits>(), 1u);
  EXPECT_DOUBLE_EQ(read_via(cache, 0), 9.0);
}

TEST_F(DsmTest, LruEvictionRespectsCapacity) {
  auto cache = make_cache(1, /*capacity=*/2);
  for (int p = 0; p < 4; ++p) write_page(double(p), p);
  for (int p = 0; p < 4; ++p) EXPECT_DOUBLE_EQ(read_via(cache, p), p);
  EXPECT_EQ(cache.call<&PageCache::resident>(), 2u);
  // Pages 2 and 3 are resident; 0 and 1 were evicted.
  EXPECT_DOUBLE_EQ(read_via(cache, 3), 3.0);
  EXPECT_EQ(cache.call<&PageCache::hits>(), 1u);
  (void)read_via(cache, 0);  // miss again
  EXPECT_EQ(cache.call<&PageCache::misses>(), 5u);
}

TEST_F(DsmTest, EvictedPagesGetUnsubscribedLazily) {
  auto cache = make_cache(1, /*capacity=*/1);
  write_page(1.0, 0);
  write_page(2.0, 1);
  (void)read_via(cache, 0);
  (void)read_via(cache, 1);  // evicts page 0 (unsubscribe queued)
  (void)read_via(cache, 0);  // next miss performs the unsubscription...
  // ...of page 1, which was evicted by the read of page 0 above.
  (void)read_via(cache, 1);
  // Both pages were resubscribed after their unsubscriptions; the device
  // never accumulates dead subscribers beyond the transient window.
  EXPECT_LE(device_.call<&CoherentDevice::subscriber_count>(0), 1u);
  EXPECT_LE(device_.call<&CoherentDevice::subscriber_count>(1), 1u);
}

TEST_F(DsmTest, ServesInheritedProtocols) {
  // Three-level process inheritance: CoherentDevice is an ArrayPageDevice
  // is a PageDevice.
  remote_ptr<storage::ArrayPageDevice> as_array = device_;
  remote_ptr<storage::PageDevice> as_page = device_;
  write_page(7.0, 5);
  EXPECT_DOUBLE_EQ(as_array.call<&storage::ArrayPageDevice::sum>(5),
                   7.0 * 64);
  EXPECT_EQ(as_page.call<&storage::PageDevice::page_size>(),
            static_cast<int>(64 * sizeof(double)));
}

TEST_F(DsmTest, CoherenceUnderConcurrentReadersAndWriter) {
  // Writer flips page 0 between whole-page values; readers through two
  // caches must only ever observe a uniform page with one of the written
  // values, and after the writer finishes, the final value.
  auto c1 = make_cache(1);
  auto c2 = make_cache(2);
  write_page(0.0, 0);

  std::atomic<bool> stop{false};
  std::atomic<int> anomalies{0};
  auto reader = [&](remote_ptr<PageCache> cache, net::MachineId m) {
    auto guard = cluster_.use(m);
    while (!stop.load()) {
      auto page = cache.call<&PageCache::read_array>(device_, 0);
      const double first = page.at(0, 0, 0);
      for (index_t i = 0; i < page.elements(); ++i)
        if (page.values()[i] != first) anomalies.fetch_add(1);
    }
  };
  std::thread r1(reader, c1, 1);
  std::thread r2(reader, c2, 2);

  for (int v = 1; v <= 30; ++v) write_page(double(v), 0);
  stop = true;
  r1.join();
  r2.join();

  EXPECT_EQ(anomalies.load(), 0);
  // After the last write's invalidations completed, both caches converge
  // on the final value.
  EXPECT_DOUBLE_EQ(read_via(c1, 0), 30.0);
  EXPECT_DOUBLE_EQ(read_via(c2, 0), 30.0);
}

TEST_F(DsmTest, ReadBeforeSetSelfFails) {
  auto cache = cluster_.make_remote<PageCache>(1, 4u);
  EXPECT_THROW(cache.call<&PageCache::read_array>(device_, 0),
               rpc::RemoteError);
}

TEST_F(DsmTest, PrefetchWastedWhenInvalidatedBeforeUse) {
  auto cache = cluster_.make_remote<PageCache>(
      1, std::uint32_t{8}, dsm::PageCacheOptions{.readahead = 4});
  cache.call<&PageCache::set_self>(cache);
  for (int p = 0; p < 8; ++p) write_page(double(p), p);

  // Two consecutive misses arm the stream detector; the third read finds
  // its page already on the wire (window [2, 5]) and harvests the batch.
  EXPECT_DOUBLE_EQ(read_via(cache, 0), 0.0);
  EXPECT_DOUBLE_EQ(read_via(cache, 1), 1.0);
  EXPECT_DOUBLE_EQ(read_via(cache, 2), 2.0);
  EXPECT_GE(cache.call<&PageCache::prefetch_useful>(), 1u);

  // Page 4 sits prefetched but never read.  A coherent write must charge
  // the prefetcher (wasted, not useful) and drop the stale copy...
  const auto wasted0 = cache.call<&PageCache::prefetch_wasted>();
  const auto misses0 = cache.call<&PageCache::misses>();
  write_page(99.0, 4);
  EXPECT_EQ(cache.call<&PageCache::prefetch_wasted>(), wasted0 + 1);
  EXPECT_GE(cache.call<&PageCache::invalidations>(), 1u);

  // ...so the next read is a fresh miss that sees the new bytes.
  EXPECT_DOUBLE_EQ(read_via(cache, 4), 99.0);
  EXPECT_GT(cache.call<&PageCache::misses>(), misses0);
}

TEST_F(DsmTest, PoisonedPrefetchRefetchKeepsSubscriptionLive) {
  auto cache = cluster_.make_remote<PageCache>(
      1, std::uint32_t{8}, dsm::PageCacheOptions{.readahead = 4});
  cache.call<&PageCache::set_self>(cache);
  for (int p = 0; p < 8; ++p) write_page(double(p), p);

  // Two consecutive misses arm the stream detector; the window [2, 5]
  // goes on the wire and parks.
  EXPECT_DOUBLE_EQ(read_via(cache, 0), 0.0);
  EXPECT_DOUBLE_EQ(read_via(cache, 1), 1.0);

  // Poison page 3 while it sits in the in-flight window, then request
  // it: the harvest drops the stale prefetched copy and the read falls
  // through to a fresh fetch + re-subscribe.
  write_page(99.0, 3);
  EXPECT_DOUBLE_EQ(read_via(cache, 3), 99.0);

  // A later miss drains the unsubscribes the harvest deferred.  The
  // refetched page's subscription must survive that drain...
  (void)read_via(cache, 7);

  // ...or this write would never invalidate the cache and the final read
  // would serve 99 forever (the stale-read hole).
  write_page(100.0, 3);
  EXPECT_DOUBLE_EQ(read_via(cache, 3), 100.0);
  EXPECT_EQ(device_.call<&CoherentDevice::subscriber_count>(3), 1u);
}

TEST_F(DsmTest, FlushRacingCoherentWriteNeverYieldsStaleReads) {
  // In every interleaving of a write-back flush with a competing
  // coherent write to the same page, the coherent write's bytes land
  // last device-side: either the flush applies first and is superseded,
  // or the writer recalls the buffered bytes before its own.  A read
  // after both completed must therefore always see the coherent write —
  // never a flushed copy the cache wrongly marked clean.
  auto cache = cluster_.make_remote<PageCache>(
      1, std::uint32_t{8},
      dsm::PageCacheOptions{.write_back = true, .max_dirty = 8});
  cache.call<&PageCache::set_self>(cache);
  write_page(0.0, 0);

  for (int round = 1; round <= 100; ++round) {
    const double buffered = round * 10.0;
    const double direct = round * 10.0 + 1.0;
    cache.call<&PageCache::write_array>(device_, filled_page(buffered), 0);
    std::thread flusher([&] {
      auto guard = cluster_.use(1);
      cache.call<&PageCache::flush>();
    });
    std::thread writer([&] {
      auto guard = cluster_.use(2);
      device_.call<&CoherentDevice::write_array_coherent>(
          filled_page(direct), 0);
    });
    flusher.join();
    writer.join();
    EXPECT_DOUBLE_EQ(read_via(cache, 0), direct) << "round " << round;
    EXPECT_EQ(cache.call<&PageCache::dirty_resident>(), 0u);
  }
}

TEST_F(DsmTest, DirtyPageRecalledBeforeCompetingReadReturns) {
  auto writer = cluster_.make_remote<PageCache>(
      1, std::uint32_t{8},
      dsm::PageCacheOptions{.write_back = true, .max_dirty = 8});
  writer.call<&PageCache::set_self>(writer);
  auto reader = make_cache(2);
  write_page(1.0, 3);

  // The write completes locally: buffered dirty, ownership registered.
  writer.call<&PageCache::write_array>(device_, filled_page(42.0), 3);
  EXPECT_EQ(writer.call<&PageCache::dirty_resident>(), 1u);
  EXPECT_TRUE(device_.call<&CoherentDevice::has_dirty_owner>(3));

  // A competing read through another cache must see the buffered bytes:
  // the device recalls the dirty owner before serving.
  EXPECT_DOUBLE_EQ(read_via(reader, 3), 42.0);
  EXPECT_EQ(writer.call<&PageCache::dirty_resident>(), 0u);
  EXPECT_FALSE(device_.call<&CoherentDevice::has_dirty_owner>(3));

  // The recalled bytes reached the backing store, and the writer's copy
  // stayed resident (now clean) — a hit, not a refetch.
  EXPECT_DOUBLE_EQ(
      device_.call<&CoherentDevice::read_array>(3).at(0, 0, 0), 42.0);
  const auto hits0 = writer.call<&PageCache::hits>();
  EXPECT_DOUBLE_EQ(read_via(writer, 3), 42.0);
  EXPECT_EQ(writer.call<&PageCache::hits>(), hits0 + 1);
}

TEST_F(DsmTest, WriteBackCoalescesIntoOneFlush) {
  auto cache = cluster_.make_remote<PageCache>(
      1, std::uint32_t{8},
      dsm::PageCacheOptions{.write_back = true, .max_dirty = 2});
  cache.call<&PageCache::set_self>(cache);

  // Two buffered writes stay local: the device sees ownership traffic but
  // no page data yet.
  cache.call<&PageCache::write_array>(device_, filled_page(10.0), 0);
  cache.call<&PageCache::write_array>(device_, filled_page(11.0), 1);
  EXPECT_EQ(cache.call<&PageCache::dirty_resident>(), 2u);
  EXPECT_DOUBLE_EQ(
      device_.call<&storage::ArrayPageDevice::read_array>(0).at(0, 0, 0), 0.0);

  // The third write exceeds max_dirty and triggers one coalesced flush of
  // the whole dirty set.
  cache.call<&PageCache::write_array>(device_, filled_page(12.0), 2);
  EXPECT_EQ(cache.call<&PageCache::dirty_resident>(), 0u);
  for (int p = 0; p < 3; ++p) {
    EXPECT_FALSE(device_.call<&CoherentDevice::has_dirty_owner>(p));
    EXPECT_DOUBLE_EQ(
        device_.call<&storage::ArrayPageDevice::read_array>(p).at(0, 0, 0),
        10.0 + p);
  }

  // An explicit flush with nothing dirty is a no-op.
  cache.call<&PageCache::flush>();
  EXPECT_EQ(cache.call<&PageCache::dirty_resident>(), 0u);
}

TEST_F(DsmTest, RedistributeQuiescesDirtyCacheState) {
  // An Array living on CoherentDevices redistributes while DSM caches
  // hold state for the moving slots: the per-batch quiesce barrier must
  // recall buffered dirty bytes into the source slots before the copy
  // and invalidate subscribed readers, announcing the new map version.
  namespace arr = oopp::array;
  auto dev2 = cluster_.make_remote<CoherentDevice>(
      1, (dir_ / "dev2").string(), 8, 4, 4, 4);
  arr::BlockStorage st{device_, dev2};  // derived → base remote_ptrs
  // 8x4x4 with 4x4x4 pages: 2 pages, round-robin -> one per device.
  arr::Array a(8, 4, 4, 4, 4, 4, st,
               arr::PageMapSpec{arr::PageMapKind::kRoundRobin});
  const auto whole = arr::Domain::whole({8, 4, 4});
  a.write(std::vector<double>(static_cast<std::size_t>(whole.volume()), 1.0),
          whole);

  // A reader cache subscribes to the first page's current slot...
  auto reader = make_cache(2);
  EXPECT_DOUBLE_EQ(read_via(reader, 0), 1.0);
  // ...and a write-back cache buffers dirty bytes for the same slot.
  auto writer = cluster_.make_remote<PageCache>(
      3, std::uint32_t{8},
      dsm::PageCacheOptions{.write_back = true, .max_dirty = 8});
  writer.call<&PageCache::set_self>(writer);
  writer.call<&PageCache::write_array>(device_, filled_page(42.0), 0);
  EXPECT_TRUE(device_.call<&CoherentDevice::has_dirty_owner>(0));

  const auto rst =
      a.redistribute(arr::PageMapSpec{arr::PageMapKind::kBlocked});
  EXPECT_EQ(rst.pages_migrated, 2u);
  EXPECT_EQ(rst.map_version, 1u);

  // The quiesce recalled the dirty owner (so the migrator copied the
  // buffered 42s, not the stale 1s) and told the device the new version.
  EXPECT_FALSE(device_.call<&CoherentDevice::has_dirty_owner>(0));
  EXPECT_EQ(writer.call<&PageCache::dirty_resident>(), 0u);
  EXPECT_EQ(device_.call<&CoherentDevice::last_quiesce_version>(), 1u);
  EXPECT_EQ(dev2.call<&CoherentDevice::last_quiesce_version>(), 1u);
  // The subscribed reader was invalidated: its copy of the dead slot is
  // gone rather than serving stale bytes forever.
  EXPECT_GE(reader.call<&PageCache::invalidations>(), 1u);

  // The array sees the dirty bytes at the new homes.
  const arr::Domain first(0, 4, 0, 4, 0, 4);
  for (const double x : a.read(first)) EXPECT_DOUBLE_EQ(x, 42.0);
  const arr::Domain second(4, 8, 0, 4, 0, 4);
  for (const double x : a.read(second)) EXPECT_DOUBLE_EQ(x, 1.0);
}

}  // namespace
