// Collectives tests: every operation, both topologies, checked against a
// straightforward local model — including property sweeps over group
// size, root, payload length and reduction kind, and a tree-vs-flat
// equivalence property.
#include <gtest/gtest.h>

#include <numeric>

#include "coll/collectives.hpp"
#include "core/oopp.hpp"
#include "util/prng.hpp"

using namespace oopp;
namespace coll = oopp::coll;
using coll::CollWorker;
using coll::ReduceKind;
using coll::Topology;

namespace {

struct CollFixture {
  Cluster cluster{4};

  ProcessGroup<CollWorker<double>> group(int n) {
    return coll::make_group<double>(n, [&](int i) {
      return static_cast<net::MachineId>(i % cluster.size());
    });
  }
};

std::vector<double> vec(std::initializer_list<double> v) { return v; }

TEST(Collectives, CombineOne) {
  EXPECT_EQ(coll::combine_one(ReduceKind::kSum, 2.0, 3.0), 5.0);
  EXPECT_EQ(coll::combine_one(ReduceKind::kProd, 2.0, 3.0), 6.0);
  EXPECT_EQ(coll::combine_one(ReduceKind::kMin, 2.0, 3.0), 2.0);
  EXPECT_EQ(coll::combine_one(ReduceKind::kMax, 2.0, 3.0), 3.0);
}

TEST(Collectives, CombineIntoLengthMismatchRejected) {
  std::vector<double> a{1.0, 2.0};
  std::vector<double> b{1.0};
  EXPECT_THROW(coll::combine_into(ReduceKind::kSum, a, b),
               oopp::check_error);
}

TEST(Collectives, BroadcastBothTopologies) {
  CollFixture fx;
  for (auto topo : {Topology::kFlat, Topology::kTree}) {
    auto g = fx.group(7);
    coll::broadcast(g, 2, vec({1.5, -2.5, 3.0}), topo);
    for (std::size_t i = 0; i < g.size(); ++i)
      EXPECT_EQ(g[i].call<&CollWorker<double>::data>(),
                vec({1.5, -2.5, 3.0}));
    g.destroy_all();
  }
}

TEST(Collectives, ReduceBothTopologies) {
  CollFixture fx;
  for (auto topo : {Topology::kFlat, Topology::kTree}) {
    auto g = fx.group(6);
    for (std::size_t i = 0; i < g.size(); ++i)
      g[i].call<&CollWorker<double>::set_data>(
          vec({double(i), double(i) * 10}));
    auto total = coll::reduce(g, 0, ReduceKind::kSum, topo);
    EXPECT_EQ(total, vec({15.0, 150.0}));
    auto mx = coll::reduce(g, 3, ReduceKind::kMax, topo);
    EXPECT_EQ(mx, vec({5.0, 50.0}));
    g.destroy_all();
  }
}

TEST(Collectives, AllReduce) {
  CollFixture fx;
  for (auto topo : {Topology::kFlat, Topology::kTree}) {
    auto g = fx.group(5);
    for (std::size_t i = 0; i < g.size(); ++i)
      g[i].call<&CollWorker<double>::set_data>(vec({double(i + 1)}));
    auto total = coll::all_reduce(g, ReduceKind::kProd, topo);
    EXPECT_EQ(total, vec({120.0}));
    // Every member now holds the result.
    for (std::size_t i = 0; i < g.size(); ++i)
      EXPECT_EQ(g[i].call<&CollWorker<double>::data>(), vec({120.0}));
    g.destroy_all();
  }
}

TEST(Collectives, GatherOrdersById) {
  CollFixture fx;
  for (auto topo : {Topology::kFlat, Topology::kTree}) {
    auto g = fx.group(6);
    for (std::size_t i = 0; i < g.size(); ++i)
      g[i].call<&CollWorker<double>::set_data>(vec({double(i) * 2}));
    auto all = coll::gather(g, 4, topo);
    ASSERT_EQ(all.size(), 6u);
    for (std::size_t i = 0; i < all.size(); ++i)
      EXPECT_EQ(all[i], vec({double(i) * 2}));
    g.destroy_all();
  }
}

TEST(Collectives, ScatterDeliversChunks) {
  CollFixture fx;
  for (auto topo : {Topology::kFlat, Topology::kTree}) {
    auto g = fx.group(5);
    std::vector<std::vector<double>> chunks;
    for (int i = 0; i < 5; ++i)
      chunks.push_back(vec({double(i), double(i) + 0.5}));
    coll::scatter(g, 3, chunks, topo);
    for (std::size_t i = 0; i < g.size(); ++i)
      EXPECT_EQ(g[i].call<&CollWorker<double>::data>(), chunks[i]);
    g.destroy_all();
  }
}

TEST(Collectives, SingleMemberGroup) {
  CollFixture fx;
  auto g = fx.group(1);
  coll::broadcast(g, 0, vec({9.0}), Topology::kTree);
  EXPECT_EQ(coll::reduce(g, 0, ReduceKind::kSum, Topology::kTree),
            vec({9.0}));
  EXPECT_EQ(coll::gather(g, 0, Topology::kTree).size(), 1u);
  g.destroy_all();
}

TEST(Collectives, UnwiredWorkerRejectsTreeOps) {
  CollFixture fx;
  auto w = fx.cluster.make_remote<CollWorker<double>>(1, 0);
  EXPECT_THROW(
      w.call<&CollWorker<double>::tree_bcast>(0, std::int64_t{0},
                                              std::int64_t{1}, vec({1.0})),
      rpc::RemoteError);
  w.destroy();
}

// Property sweep: tree results == flat results for random configurations.
struct CollCase {
  int n;
  int root;
  int len;
  ReduceKind kind;
};

class CollectiveEquivalence : public ::testing::TestWithParam<CollCase> {};

TEST_P(CollectiveEquivalence, TreeMatchesFlat) {
  const auto& c = GetParam();
  CollFixture fx;
  Xoshiro256 rng(static_cast<std::uint64_t>(c.n * 1000 + c.root * 10 +
                                            c.len));

  auto g = fx.group(c.n);
  std::vector<std::vector<double>> data(static_cast<std::size_t>(c.n));
  for (auto& v : data) {
    v.resize(static_cast<std::size_t>(c.len));
    for (auto& x : v) x = rng.uniform(-4.0, 4.0);
  }
  for (int i = 0; i < c.n; ++i)
    g[i].call<&CollWorker<double>::set_data>(data[i]);

  const auto via_tree = coll::reduce(g, c.root, c.kind, Topology::kTree);
  const auto via_flat = coll::reduce(g, c.root, c.kind, Topology::kFlat);
  ASSERT_EQ(via_tree.size(), via_flat.size());
  for (std::size_t i = 0; i < via_tree.size(); ++i)
    EXPECT_NEAR(via_tree[i], via_flat[i], 1e-9) << "element " << i;

  // Gather equivalence on the same group.
  EXPECT_EQ(coll::gather(g, c.root, Topology::kTree),
            coll::gather(g, c.root, Topology::kFlat));
  g.destroy_all();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CollectiveEquivalence,
    ::testing::Values(CollCase{2, 0, 3, ReduceKind::kSum},
                      CollCase{3, 2, 1, ReduceKind::kMax},
                      CollCase{4, 1, 8, ReduceKind::kSum},
                      CollCase{5, 4, 2, ReduceKind::kMin},
                      CollCase{8, 3, 4, ReduceKind::kSum},
                      CollCase{9, 0, 5, ReduceKind::kProd},
                      CollCase{13, 7, 2, ReduceKind::kSum},
                      CollCase{16, 15, 1, ReduceKind::kMax}));

}  // namespace
