// Unit tests for the support layer: index math, PRNG determinism and
// distribution bounds, timing, and type names.
#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <thread>

#include "util/clock.hpp"
#include "util/ndindex.hpp"
#include "util/prng.hpp"
#include "util/type_name.hpp"

using namespace oopp;

namespace {

TEST(NdIndex, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0);
  EXPECT_EQ(ceil_div(1, 4), 1);
  EXPECT_EQ(ceil_div(4, 4), 1);
  EXPECT_EQ(ceil_div(5, 4), 2);
  EXPECT_EQ(ceil_div(8, 4), 2);
  EXPECT_EQ(ceil_div(9, 1), 9);
}

TEST(NdIndex, LinearIsRowMajor) {
  const Extents3 e{2, 3, 4};
  EXPECT_EQ(e.volume(), 24);
  EXPECT_EQ(e.linear(0, 0, 0), 0);
  EXPECT_EQ(e.linear(0, 0, 1), 1);   // axis 3 fastest
  EXPECT_EQ(e.linear(0, 1, 0), 4);
  EXPECT_EQ(e.linear(1, 0, 0), 12);
  EXPECT_EQ(e.linear(1, 2, 3), 23);
}

TEST(NdIndex, DelinearizeInvertsLinear) {
  const Extents3 e{3, 5, 7};
  for (index_t lin = 0; lin < e.volume(); ++lin) {
    const auto [i1, i2, i3] = delinearize(e, lin);
    EXPECT_TRUE(e.contains(i1, i2, i3));
    EXPECT_EQ(e.linear(i1, i2, i3), lin);
  }
  EXPECT_THROW(delinearize(e, e.volume()), check_error);
  EXPECT_THROW(delinearize(e, -1), check_error);
}

TEST(NdIndex, Contains) {
  const Extents3 e{2, 2, 2};
  EXPECT_TRUE(e.contains(0, 0, 0));
  EXPECT_TRUE(e.contains(1, 1, 1));
  EXPECT_FALSE(e.contains(2, 0, 0));
  EXPECT_FALSE(e.contains(0, -1, 0));
}

TEST(Prng, DeterministicPerSeed) {
  Xoshiro256 a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
  // Different seed, different stream (overwhelmingly likely).
  Xoshiro256 a2(42);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a2() == c()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Prng, UniformStaysInBounds) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double r = rng.uniform(-2.5, 4.5);
    EXPECT_GE(r, -2.5);
    EXPECT_LT(r, 4.5);
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Prng, BelowCoversRange) {
  Xoshiro256 rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Clock, TimerMeasuresElapsed) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double ms = t.millis();
  EXPECT_GE(ms, 18.0);
  EXPECT_LT(ms, 500.0);
  t.reset();
  EXPECT_LT(t.millis(), 10.0);
  EXPECT_GT(now_ns(), 0);
}

TEST(TypeName, CommonSpellingsStable) {
  EXPECT_EQ(type_name<double>(), "f64");
  EXPECT_EQ(type_name<float>(), "f32");
  EXPECT_EQ(type_name<int>(), "i32");
  EXPECT_EQ(type_name<unsigned long>(), "u64");
  EXPECT_EQ(type_name<bool>(), "bool");
}

TEST(Check, MacrosThrowWithContext) {
  try {
    OOPP_CHECK_MSG(1 == 2, "custom detail " << 42);
    FAIL();
  } catch (const check_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("custom detail 42"), std::string::npos);
  }
}

}  // namespace
