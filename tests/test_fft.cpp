// FFT tests: the serial kernels against the O(n^2) DFT oracle, known
// analytic transforms, Parseval's identity, round trips — and the
// distributed transform against the node-local 3-D FFT for many worker
// counts, extents (including non-power-of-two and degenerate splits), and
// both wiring modes (deep-copied group vs remote directory).
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <atomic>
#include <thread>

#include "core/oopp.hpp"
#include "fft/fft.hpp"
#include "fft/fft3d.hpp"
#include "array/block_storage.hpp"
#include "fft/fft_worker.hpp"
#include "fft/out_of_core.hpp"
#include "fft/plan.hpp"
#include "util/prng.hpp"

using oopp::Cluster;
using oopp::Extents3;
using oopp::index_t;
namespace fft = oopp::fft;
using fft::cplx;

namespace {

std::vector<cplx> random_signal(std::size_t n, std::uint64_t seed) {
  oopp::Xoshiro256 rng(seed);
  std::vector<cplx> v(n);
  for (auto& x : v) x = cplx(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
  return v;
}

double max_err(const std::vector<cplx>& a, const std::vector<cplx>& b) {
  EXPECT_EQ(a.size(), b.size());
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

TEST(Fft1D, MatchesOracleForPow2) {
  for (std::size_t n : {1u, 2u, 4u, 8u, 64u, 256u}) {
    auto x = random_signal(n, n);
    auto expect = fft::dft_reference(x, -1);
    fft::fft_inplace(x, -1);
    EXPECT_LT(max_err(x, expect), 1e-9 * double(n ? n : 1)) << "n=" << n;
  }
}

TEST(Fft1D, MatchesOracleForArbitraryLengths) {
  for (std::size_t n : {3u, 5u, 6u, 7u, 12u, 15u, 17u, 100u, 243u}) {
    auto x = random_signal(n, 1000 + n);
    auto expect = fft::dft_reference(x, -1);
    fft::fft_inplace(x, -1);
    EXPECT_LT(max_err(x, expect), 1e-8) << "n=" << n;
  }
}

TEST(Fft1D, InverseMatchesOracle) {
  auto x = random_signal(48, 7);
  auto expect = fft::dft_reference(x, +1);
  fft::fft_inplace(x, +1);
  EXPECT_LT(max_err(x, expect), 1e-9);
}

TEST(Fft1D, RoundTripIsIdentity) {
  for (std::size_t n : {8u, 13u, 128u}) {
    auto x = random_signal(n, 2 * n);
    auto orig = x;
    fft::fft_inplace(x, -1);
    fft::fft_inplace(x, +1);
    fft::scale(x, 1.0 / double(n));
    EXPECT_LT(max_err(x, orig), 1e-10) << "n=" << n;
  }
}

TEST(Fft1D, DeltaTransformsToConstant) {
  std::vector<cplx> x(16, cplx{});
  x[0] = 1.0;
  fft::fft_inplace(x, -1);
  for (const auto& v : x) EXPECT_NEAR(std::abs(v - cplx(1.0, 0.0)), 0.0, 1e-12);
}

TEST(Fft1D, PureToneTransformsToSpike) {
  constexpr std::size_t n = 64;
  constexpr std::size_t k = 5;
  std::vector<cplx> x(n);
  for (std::size_t j = 0; j < n; ++j) {
    const double ang = 2.0 * std::numbers::pi * double(k) * double(j) / n;
    x[j] = cplx(std::cos(ang), std::sin(ang));
  }
  fft::fft_inplace(x, -1);
  for (std::size_t j = 0; j < n; ++j) {
    const double expect = (j == k) ? double(n) : 0.0;
    EXPECT_NEAR(std::abs(x[j]), expect, 1e-9) << "bin " << j;
  }
}

TEST(Fft1D, ParsevalHolds) {
  constexpr std::size_t n = 128;
  auto x = random_signal(n, 3);
  double time_energy = 0.0;
  for (const auto& v : x) time_energy += std::norm(v);
  fft::fft_inplace(x, -1);
  double freq_energy = 0.0;
  for (const auto& v : x) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy, time_energy * n, 1e-6 * time_energy * n);
}

TEST(Fft1D, LinearityHolds) {
  constexpr std::size_t n = 32;
  auto x = random_signal(n, 4);
  auto y = random_signal(n, 5);
  std::vector<cplx> z(n);
  const cplx a(2.0, -1.0), b(-0.5, 3.0);
  for (std::size_t i = 0; i < n; ++i) z[i] = a * x[i] + b * y[i];
  fft::fft_inplace(x, -1);
  fft::fft_inplace(y, -1);
  fft::fft_inplace(z, -1);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(std::abs(z[i] - (a * x[i] + b * y[i])), 0.0, 1e-9);
}

TEST(Fft1D, RejectsBadArguments) {
  std::vector<cplx> x(8);
  EXPECT_THROW(fft::fft_inplace(x, 0), oopp::check_error);
  std::vector<cplx> y(6);
  EXPECT_THROW(fft::fft_pow2_inplace(y, -1), oopp::check_error);
  std::vector<cplx> empty;
  EXPECT_THROW(fft::fft_inplace(empty, -1), oopp::check_error);
}

TEST(FftPlans, PlannedMatchesUnplannedAndOracle) {
  for (std::size_t n : {2u, 8u, 15u, 64u, 100u}) {
    for (int sign : {-1, +1}) {
      auto x = random_signal(n, 31 * n + (sign > 0));
      auto direct = x;
      auto planned = x;
      fft::fft_inplace_unplanned(direct, sign);
      fft::plan_for(static_cast<index_t>(n), sign)->execute(planned);
      EXPECT_LT(max_err(direct, planned), 1e-10) << "n=" << n;
      auto oracle = fft::dft_reference(x, sign);
      EXPECT_LT(max_err(planned, oracle), 1e-8) << "n=" << n;
    }
  }
}

TEST(FftPlans, CacheSharesPlans) {
  auto a = fft::plan_for(256, -1);
  auto b = fft::plan_for(256, -1);
  EXPECT_EQ(a.get(), b.get());
  auto c = fft::plan_for(256, +1);
  EXPECT_NE(a.get(), c.get());
  EXPECT_GE(fft::plan_cache_size(), 2u);
}

TEST(FftPlans, PlanReusableManyTimes) {
  auto plan = fft::plan_for(64, -1);
  auto x = random_signal(64, 5);
  auto expect = x;
  fft::fft_inplace_unplanned(expect, -1);
  for (int rep = 0; rep < 3; ++rep) {
    auto y = x;
    plan->execute(y);
    EXPECT_LT(max_err(y, expect), 1e-12);
  }
}

TEST(FftPlans, ConcurrentPlanForIsSafe) {
  std::vector<std::thread> threads;
  std::atomic<int> errors{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      auto x = random_signal(128, 900 + t);
      auto expect = x;
      fft::fft_inplace_unplanned(expect, -1);
      fft::fft_inplace(x, -1);
      if (max_err(x, expect) > 1e-10) errors.fetch_add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(errors.load(), 0);
}

TEST(FftStrided, EqualsContiguous) {
  constexpr index_t n = 32, stride = 5;
  auto packed = random_signal(n, 9);
  std::vector<cplx> strided(static_cast<std::size_t>(n * stride), cplx{});
  for (index_t i = 0; i < n; ++i) strided[i * stride] = packed[i];
  fft::fft_inplace(packed, -1);
  fft::fft_strided(strided.data(), n, stride, -1);
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(std::abs(strided[i * stride] - packed[i]), 0.0, 1e-10);
}

TEST(Fft3D, MatchesOracleSmall) {
  const Extents3 e{4, 3, 5};
  auto x = random_signal(static_cast<std::size_t>(e.volume()), 11);
  auto expect = fft::dft3d_reference(x, e, -1);
  fft::fft3d_inplace(x, e, -1);
  EXPECT_LT(max_err(x, expect), 1e-8);
}

TEST(Fft3D, RoundTripIsIdentity) {
  const Extents3 e{8, 4, 6};
  auto x = random_signal(static_cast<std::size_t>(e.volume()), 12);
  auto orig = x;
  fft::fft3d_inplace(x, e, -1);
  fft::fft3d_inplace(x, e, +1);
  fft::scale(x, 1.0 / double(e.volume()));
  EXPECT_LT(max_err(x, orig), 1e-10);
}

TEST(FftSplit, RowSplitPartitions) {
  for (index_t n : {1, 5, 8, 17}) {
    for (int p : {1, 2, 3, 8}) {
      index_t covered = 0;
      for (int w = 0; w < p; ++w) {
        const auto s = fft::split_rows(n, p, w);
        EXPECT_GE(s.count(), 0);
        EXPECT_EQ(s.lo, covered);
        covered = s.hi;
      }
      EXPECT_EQ(covered, n);
    }
  }
}

// ---------------------------------------------------------------------------
// Distributed transform
// ---------------------------------------------------------------------------

struct DistCase {
  Extents3 extents;
  int workers;
  bool use_directory;
};

class DistributedFft : public ::testing::TestWithParam<DistCase> {};

TEST_P(DistributedFft, MatchesLocal3DFft) {
  const auto& c = GetParam();
  Cluster cluster(4);
  fft::DistributedFFT3D dfft(
      c.extents, c.workers,
      [&](int w) { return static_cast<oopp::net::MachineId>(w %
                                                            cluster.size()); },
      fft::DistributedFFT3D::Options{.use_directory = c.use_directory,
                                     .restore_layout = true});

  auto x = random_signal(static_cast<std::size_t>(c.extents.volume()),
                         c.extents.volume());
  auto expect = x;
  fft::fft3d_inplace(expect, c.extents, -1);

  dfft.scatter(x);
  dfft.forward();
  auto got = dfft.gather();
  EXPECT_LT(max_err(got, expect), 1e-8);

  // Inverse brings the signal back.
  dfft.inverse();
  auto back = dfft.gather();
  EXPECT_LT(max_err(back, x), 1e-9);
  dfft.shutdown();
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DistributedFft,
    ::testing::Values(
        DistCase{{8, 8, 8}, 1, false},    // single worker degenerate
        DistCase{{8, 8, 8}, 2, false},
        DistCase{{8, 8, 8}, 4, false},
        DistCase{{16, 8, 4}, 4, false},   // anisotropic
        DistCase{{7, 9, 5}, 3, false},    // non-pow2, uneven splits
        DistCase{{5, 8, 8}, 8, false},    // more workers than rows
        DistCase{{8, 8, 8}, 4, true},     // directory (shallow) wiring
        DistCase{{6, 10, 3}, 5, true}));

// §4's `transform(sign, Array* a)`: the FFT group reads its input from,
// and writes its output to, a distributed Array — workers pull their own
// slabs from the storage processes.
TEST(DistributedFftMisc, TransformReadsAndWritesDistributedArray) {
  namespace arr = oopp::array;
  Cluster cluster(4);
  const auto dir = std::filesystem::temp_directory_path() /
                   ("oopp-fft-array-" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);

  const Extents3 e{8, 8, 8};
  const Extents3 b{4, 4, 4};
  const Extents3 grid{2, 2, 2};
  const arr::PageMapSpec spec{arr::PageMapKind::kRoundRobin};

  auto make_array = [&](const std::string& tag) {
    arr::BlockStorageConfig cfg;
    cfg.file_prefix = (dir / tag).string();
    cfg.devices = 4;
    cfg.pages_per_device =
        static_cast<std::int32_t>(spec.pages_per_device(grid, 4));
    cfg.n1 = 4;
    cfg.n2 = 4;
    cfg.n3 = 4;
    auto storage = arr::create_block_storage(cfg, [&](std::int32_t i) {
      return static_cast<oopp::net::MachineId>(i % cluster.size());
    });
    return arr::Array(e.n1, e.n2, e.n3, b.n1, b.n2, b.n3, storage, spec);
  };
  auto re = make_array("re");
  auto im = make_array("im");

  // Fill the distributed arrays with a random field.
  oopp::Xoshiro256 rng(123);
  const auto whole = arr::Domain::whole(e);
  std::vector<double> re_buf(static_cast<std::size_t>(e.volume()));
  std::vector<double> im_buf(re_buf.size());
  for (auto& x : re_buf) x = rng.uniform(-1, 1);
  for (auto& x : im_buf) x = rng.uniform(-1, 1);
  re.write(re_buf, whole);
  im.write(im_buf, whole);

  // Expected result via the node-local transform.
  std::vector<cplx> expect(re_buf.size());
  for (std::size_t i = 0; i < expect.size(); ++i)
    expect[i] = cplx(re_buf[i], im_buf[i]);
  fft::fft3d_inplace(expect, e, -1);

  // The paper's loop: the group transforms "a", pulling slabs itself.
  fft::DistributedFFT3D dfft(e, 4, [&](int w) {
    return static_cast<oopp::net::MachineId>(w % cluster.size());
  });
  dfft.scatter_from(re, im);
  dfft.forward();
  dfft.gather_to(re, im);

  const auto re_out = re.read(whole);
  const auto im_out = im.read(whole);
  double err = 0.0;
  for (std::size_t i = 0; i < expect.size(); ++i)
    err = std::max(err,
                   std::abs(cplx(re_out[i], im_out[i]) - expect[i]));
  EXPECT_LT(err, 1e-9);

  dfft.shutdown();
  std::filesystem::remove_all(dir);
}

// §1's motivating computation: the FFT of an array that lives on disk and
// never fits in the client's memory budget.
class OutOfCoreFft : public ::testing::TestWithParam<std::size_t> {};

TEST_P(OutOfCoreFft, MatchesInMemoryTransform) {
  namespace arr = oopp::array;
  Cluster cluster(4);
  const auto dir = std::filesystem::temp_directory_path() /
                   ("oopp-ooc-" + std::to_string(::getpid()) + "-" +
                    std::to_string(GetParam()));
  std::filesystem::create_directories(dir);

  const Extents3 e{8, 6, 10};
  const Extents3 b{4, 3, 5};
  const Extents3 grid{2, 2, 2};
  const arr::PageMapSpec spec{arr::PageMapKind::kRoundRobin};
  auto make_array = [&](const std::string& tag) {
    arr::BlockStorageConfig cfg;
    cfg.file_prefix = (dir / tag).string();
    cfg.devices = 4;
    cfg.pages_per_device =
        static_cast<std::int32_t>(spec.pages_per_device(grid, 4));
    cfg.n1 = static_cast<int>(b.n1);
    cfg.n2 = static_cast<int>(b.n2);
    cfg.n3 = static_cast<int>(b.n3);
    auto storage = arr::create_block_storage(cfg, [&](std::int32_t i) {
      return static_cast<oopp::net::MachineId>(i % cluster.size());
    });
    return arr::Array(e.n1, e.n2, e.n3, b.n1, b.n2, b.n3, storage, spec);
  };
  auto re = make_array("re");
  auto im = make_array("im");

  oopp::Xoshiro256 rng(GetParam());
  const auto whole = arr::Domain::whole(e);
  std::vector<double> re0(static_cast<std::size_t>(e.volume()));
  std::vector<double> im0(re0.size());
  for (auto& x : re0) x = rng.uniform(-1, 1);
  for (auto& x : im0) x = rng.uniform(-1, 1);
  re.write(re0, whole);
  im.write(im0, whole);

  std::vector<cplx> expect(re0.size());
  for (std::size_t i = 0; i < expect.size(); ++i)
    expect[i] = cplx(re0[i], im0[i]);
  fft::fft3d_inplace(expect, e, -1);

  // The budget parameter forces 1..many slabs per pass.
  const auto stats = fft::fft3d_out_of_core(
      re, im, -1, fft::OutOfCoreOptions{.max_bytes = GetParam()});
  // Every element moves exactly twice per pass regardless of budget.
  EXPECT_EQ(stats.elements_moved(),
            static_cast<std::uint64_t>(4 * e.volume()));
  EXPECT_EQ(stats.pass1.elements_read, stats.pass1.elements_written);
  EXPECT_EQ(stats.pass2.elements_read, stats.pass2.elements_written);

  const auto re_out = re.read(whole);
  const auto im_out = im.read(whole);
  double err = 0.0;
  for (std::size_t i = 0; i < expect.size(); ++i)
    err = std::max(err,
                   std::abs(cplx(re_out[i], im_out[i]) - expect[i]));
  EXPECT_LT(err, 1e-9);

  // Inverse out-of-core round trip restores the input.
  fft::fft3d_out_of_core(re, im, +1,
                         fft::OutOfCoreOptions{.max_bytes = GetParam()});
  re.scale(1.0 / double(e.volume()), whole);
  im.scale(1.0 / double(e.volume()), whole);
  const auto re_back = re.read(whole);
  double rt = 0.0;
  for (std::size_t i = 0; i < re_back.size(); ++i)
    rt = std::max(rt, std::abs(re_back[i] - re0[i]));
  EXPECT_LT(rt, 1e-10);

  std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(
    Budgets, OutOfCoreFft,
    ::testing::Values(std::size_t{1},          // pathological: 1 row/col
                      std::size_t{2000},       // a couple of rows
                      std::size_t{16'000},     // a few slabs
                      std::size_t{1} << 24));  // everything in one slab

TEST(DistributedFftMisc, WorkerStateChecks) {
  Cluster cluster(2);
  auto w = cluster.make_remote<fft::FFTWorker>(1, 0);
  // transform without group/slab must fail loudly across the wire.
  EXPECT_THROW(w.call<&fft::FFTWorker::transform>(-1, true),
               oopp::rpc::RemoteError);
  w.destroy();
}

TEST(DistributedFftMisc, SlabSizeValidated) {
  Cluster cluster(2);
  fft::DistributedFFT3D dfft({4, 4, 4}, 2,
                             [](int) { return oopp::net::MachineId{1}; });
  EXPECT_THROW(dfft.scatter(std::vector<cplx>(7)), oopp::check_error);
  dfft.shutdown();
}

TEST(DistributedFftMisc, TransposedStateGuard) {
  Cluster cluster(2);
  fft::DistributedFFT3D dfft(
      {4, 4, 4}, 2, [](int) { return oopp::net::MachineId{0}; },
      fft::DistributedFFT3D::Options{.use_directory = false,
                                     .restore_layout = false});
  dfft.scatter(random_signal(64, 77));
  dfft.transform(-1);
  // A second transform on axis-transposed data is a usage error.
  EXPECT_THROW(dfft.transform(-1), oopp::rpc::RemoteError);
  dfft.shutdown();
}

TEST(DistributedFftMisc, GroupWiringQueries) {
  Cluster cluster(3);
  fft::DistributedFFT3D dfft({6, 6, 6}, 3, [&](int w) {
    return static_cast<oopp::net::MachineId>(w % cluster.size());
  });
  const auto& group = dfft.workers();
  for (int w = 0; w < 3; ++w) {
    EXPECT_EQ(group[w].call<&fft::FFTWorker::id>(), w);
    EXPECT_EQ(group[w].call<&fft::FFTWorker::group_size>(), 3);
    EXPECT_EQ(group[w].call<&fft::FFTWorker::rows_lo>(),
              fft::split_rows(6, 3, w).lo);
  }
  dfft.shutdown();
}

}  // namespace
